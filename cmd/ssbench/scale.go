package main

// `ssbench scale` — the rank-count scaling study of the discrete-event
// scheduler (DESIGN.md §12). It sweeps world sizes across both engines,
// recording virtual makespan, host wall-clock, peak RSS and message counts
// per configuration, verifies that the event engine reproduces the goroutine
// oracle's virtual schedule bit-for-bit on a small world, and merges the
// results into BENCH_treecode.json as the schema v5 `scale` block.
//
// Peak RSS (VmHWM) is a high-water mark and never comes back down, so one
// process cannot measure several configurations independently: the parent
// re-execs itself (`scale -child ...`) once per (workload, engine, ranks)
// configuration and each child reports one JSON probe on stdout.

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"time"

	"spacesim/internal/core"
	"spacesim/internal/machine"
	"spacesim/internal/mp"
	"spacesim/internal/netsim"
	"spacesim/internal/obs/ledger"
)

// scaleSchemaVersion is the BENCH_treecode.json schema written once the
// scale block is merged in (see the history on groupReport).
const scaleSchemaVersion = 5

// scaleEntry is one measured (workload, engine, ranks) configuration.
type scaleEntry struct {
	// Workload is "step" (modeled treecode step, pure message layer),
	// "treecode" (a real core.Run step), or "collective" (barrier/bcast/
	// allreduce/allgather smoke for worlds past the modeled machine).
	Workload string `json:"workload"`
	Engine   string `json:"engine"`
	Ranks    int    `json:"ranks"`
	// Workers is the event-engine pool size the child ran with (0 = host
	// cores); always 0 for the goroutine engine.
	Workers      int     `json:"workers"`
	VirtualSec   float64 `json:"virtual_sec"`
	HostSec      float64 `json:"host_sec"`
	PeakRSSBytes int64   `json:"peak_rss_bytes"`
	Messages     int64   `json:"messages"`
	// RanksPerSec is Ranks/HostSec: how fast the host simulates ranks.
	RanksPerSec float64 `json:"ranks_per_sec"`
	// RanksPerGB is Ranks/(PeakRSSBytes/2^30): rank density in host memory.
	RanksPerGB float64 `json:"ranks_per_gb"`
}

// scaleReport is the schema v5 `scale` block.
type scaleReport struct {
	GOMAXPROCS    int          `json:"gomaxprocs"`
	Quick         bool         `json:"quick"`
	Steps         int          `json:"steps"`
	BodiesPerRank int          `json:"bodies_per_rank"`
	Entries       []scaleEntry `json:"entries"`
	// BitIdentical reports that the event engine's virtual schedule (per-rank
	// final clocks and makespan) of the blocking modeled-step workload is
	// bit-identical to the goroutine oracle's at IdentityRanks ranks.
	BitIdentical  bool `json:"bit_identical"`
	IdentityRanks int  `json:"identity_ranks"`
	// MaxEventRanks is the largest world the event engine completed.
	MaxEventRanks int `json:"max_event_ranks"`
	// The engine ratios at ComparisonRanks (the largest world both engines
	// ran the step workload on): event over goroutine.
	ComparisonRanks int     `json:"comparison_ranks,omitempty"`
	HostSpeedup     float64 `json:"host_speedup_event_vs_goroutine,omitempty"`
	RanksPerGBGain  float64 `json:"ranks_per_gb_event_vs_goroutine,omitempty"`
}

// scaleProbe is what a child prints: the entry plus the full virtual
// schedule on small worlds so the parent can check engine bit-identity.
type scaleProbe struct {
	scaleEntry
	RankClocks []float64 `json:"rank_clocks,omitempty"`
}

// scaleCmd drives the sweep. Like diff and faultsweep it owns its flag set
// and bypasses the global re-parse in main.
func scaleCmd(args []string) {
	fs := flag.NewFlagSet("scale", flag.ExitOnError)
	out := fs.String("o", "BENCH_treecode.json", "benchmark record to merge the scale block into")
	quickFlag := fs.Bool("quick", false, "small sweep for CI (make scale-smoke)")
	ranksFlag := fs.String("ranks", "", "rank counts for the both-engine sweep (default 8,64,294; quick 8,33)")
	eventFlag := fs.String("event-ranks", "", "event-only rank counts (default 1024,2048; quick none)")
	steps := fs.Int("steps", 0, "modeled treecode steps per run (default 2; quick 1)")
	bodies := fs.Int("bodies", 0, "bodies per rank for the modeled step (default 2000; quick 256)")
	workers := fs.Int("workers", 0, "event-engine worker pool (0 = host cores)")
	child := fs.Bool("child", false, "internal: run one configuration and print a JSON probe")
	engineName := fs.String("engine", "event", "child: engine to run")
	workload := fs.String("workload", "step", "child: step|treecode|collective")
	nRanks := fs.Int("n", 8, "child: rank count")
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	if *steps <= 0 {
		*steps = 2
		if *quickFlag {
			*steps = 1
		}
	}
	if *bodies <= 0 {
		*bodies = 2000
		if *quickFlag {
			*bodies = 256
		}
	}
	if *child {
		runScaleChild(*engineName, *workload, *nRanks, *steps, *bodies, *workers)
		return
	}

	sweep := parseRankList(*ranksFlag, map[bool][]int{false: {8, 64, 294}, true: {8, 33}}[*quickFlag])
	eventOnly := parseRankList(*eventFlag, map[bool][]int{false: {1024, 2048}, true: nil}[*quickFlag])

	type cfg struct {
		workload string
		engine   string
		ranks    int
		steps    int
		bodies   int
	}
	var cfgs []cfg
	for _, n := range sweep {
		for _, e := range []string{"goroutine", "event"} {
			cfgs = append(cfgs, cfg{"step", e, n, *steps, *bodies})
		}
	}
	for _, n := range eventOnly {
		// Ring allgathers make the step workload O(ranks^2) messages; one
		// step is plenty to measure the beyond-the-machine worlds.
		cfgs = append(cfgs, cfg{"step", "event", n, 1, *bodies})
	}
	if *quickFlag {
		cfgs = append(cfgs, cfg{"collective", "event", 128, 1, 0})
	} else {
		// The acceptance workloads: a real treecode step on the full 294-node
		// machine under both engines, and a 1024-rank collective smoke.
		cfgs = append(cfgs, cfg{"treecode", "goroutine", 294, 1, 40})
		cfgs = append(cfgs, cfg{"treecode", "event", 294, 1, 40})
		cfgs = append(cfgs, cfg{"collective", "event", 1024, 2, 0})
	}

	self, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, "scale:", err)
		os.Exit(1)
	}
	rep := scaleReport{
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		Quick:         *quickFlag,
		Steps:         *steps,
		BodiesPerRank: *bodies,
	}
	clocks := map[string][]float64{} // "engine/ranks" -> schedule of the step workload
	fmt.Printf("%-10s %-9s %6s  %12s %9s %10s %12s %11s\n",
		"workload", "engine", "ranks", "virtual_sec", "host_sec", "peak_rss", "ranks/sec", "ranks/GB")
	for _, c := range cfgs {
		cargs := []string{"scale", "-child",
			"-engine", c.engine, "-workload", c.workload,
			"-n", strconv.Itoa(c.ranks), "-steps", strconv.Itoa(c.steps),
			"-bodies", strconv.Itoa(c.bodies), "-workers", strconv.Itoa(*workers)}
		cmd := exec.Command(self, cargs...)
		cmd.Stderr = os.Stderr
		outBytes, err := cmd.Output()
		if err != nil {
			fmt.Fprintf(os.Stderr, "scale: child %s/%s/%d: %v\n", c.workload, c.engine, c.ranks, err)
			os.Exit(1)
		}
		var probe scaleProbe
		if err := json.Unmarshal(outBytes, &probe); err != nil {
			fmt.Fprintf(os.Stderr, "scale: child %s/%s/%d: bad probe %q: %v\n",
				c.workload, c.engine, c.ranks, outBytes, err)
			os.Exit(1)
		}
		e := probe.scaleEntry
		rep.Entries = append(rep.Entries, e)
		if c.workload == "step" && probe.RankClocks != nil {
			clocks[fmt.Sprintf("%s/%d", c.engine, c.ranks)] = probe.RankClocks
		}
		if c.engine == "event" && c.ranks > rep.MaxEventRanks {
			rep.MaxEventRanks = c.ranks
		}
		fmt.Printf("%-10s %-9s %6d  %12.4f %9.3f %9.1fM %12.1f %11.0f\n",
			e.Workload, e.Engine, e.Ranks, e.VirtualSec, e.HostSec,
			float64(e.PeakRSSBytes)/1e6, e.RanksPerSec, e.RanksPerGB)
	}

	// Bit-identity: the step workload is blocking-only, so its virtual
	// schedule must match across engines exactly (DESIGN.md §12). Verify at
	// the smallest sweep size (children report full clocks for n <= 16).
	rep.IdentityRanks = sweep[0]
	g, e := clocks[fmt.Sprintf("goroutine/%d", rep.IdentityRanks)], clocks[fmt.Sprintf("event/%d", rep.IdentityRanks)]
	rep.BitIdentical = len(g) > 0 && len(g) == len(e)
	for i := range g {
		if i < len(e) && g[i] != e[i] {
			rep.BitIdentical = false
			fmt.Fprintf(os.Stderr, "scale: engines diverge at %d ranks: rank %d clock %v (goroutine) vs %v (event)\n",
				rep.IdentityRanks, i, g[i], e[i])
		}
	}

	// Engine ratios at the largest both-engine world of the step workload.
	best := map[string]scaleEntry{}
	for _, en := range rep.Entries {
		if en.Workload != "step" {
			continue
		}
		if cur, ok := best[en.Engine]; !ok || en.Ranks > cur.Ranks {
			best[en.Engine] = en
		}
	}
	if ge, ok1 := best["goroutine"]; ok1 {
		if ee, ok2 := best["event"]; ok2 {
			// Compare like-for-like: the event entry at the goroutine's rank
			// count, not the event engine's larger event-only worlds.
			for _, en := range rep.Entries {
				if en.Workload == "step" && en.Engine == "event" && en.Ranks == ge.Ranks {
					ee = en
				}
			}
			if ee.Ranks == ge.Ranks {
				rep.ComparisonRanks = ge.Ranks
				rep.HostSpeedup = ratioOf(ge.HostSec, ee.HostSec)
				rep.RanksPerGBGain = ratioOf(ee.RanksPerGB, ge.RanksPerGB)
				fmt.Printf("\nat %d ranks: event engine %.2fx host wall-clock, %.2fx ranks/GB vs goroutine oracle\n",
					rep.ComparisonRanks, rep.HostSpeedup, rep.RanksPerGBGain)
			}
		}
	}
	if rep.BitIdentical {
		fmt.Printf("bit-identity at %d ranks: ok (virtual schedules match across engines)\n", rep.IdentityRanks)
	}
	fmt.Printf("max event-engine world: %d ranks\n", rep.MaxEventRanks)

	lcfg := ledger.Config{
		Tool: "ssbench", Experiment: "scale",
		N: *bodies, Ranks: rep.MaxEventRanks, Steps: *steps, Workers: *workers,
		Engine: "event",
		Flags: map[string]string{
			"quick":       strconv.FormatBool(*quickFlag),
			"ranks":       fmt.Sprint(sweep),
			"event_ranks": fmt.Sprint(eventOnly),
		},
	}
	writeScale(*out, rep, lcfg)
	if !rep.BitIdentical {
		fmt.Fprintln(os.Stderr, "scale: FAIL: event engine is not bit-identical to the goroutine oracle")
		os.Exit(1)
	}
}

// runScaleChild executes one configuration and prints the probe. It runs in
// a fresh process so VmHWM is this configuration's peak alone.
func runScaleChild(engineName, workload string, n, steps, bodies, workers int) {
	eng, err := mp.ParseEngine(engineName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "scale:", err)
		os.Exit(1)
	}
	cl := machine.HypotheticalSpaceSimulator(n, netsim.ProfileLAM)
	opt := mp.RunOptions{Engine: eng, Workers: workers}
	start := time.Now()
	var st mp.Stats
	switch workload {
	case "step":
		st = mp.RunWith(cl, n, opt, func(r *mp.Rank) { modeledTreeStep(r, steps, bodies) })
	case "collective":
		st = mp.RunWith(cl, n, opt, func(r *mp.Rank) { collectiveSmoke(r, steps) })
	case "treecode":
		ics := core.PlummerSphere(rand.New(rand.NewSource(42)), n*bodies, 1.0)
		res := core.Run(core.RunConfig{
			Cluster: cl, Procs: n, Steps: steps,
			Engine: eng, EngineWorkers: workers,
		}, ics)
		if res.Err != nil {
			fmt.Fprintln(os.Stderr, "scale: treecode run:", res.Err)
			os.Exit(1)
		}
		st = res.Comm
	default:
		fmt.Fprintf(os.Stderr, "scale: unknown workload %q\n", workload)
		os.Exit(1)
	}
	host := time.Since(start).Seconds()
	if st.Err != nil {
		fmt.Fprintln(os.Stderr, "scale: run aborted:", st.Err)
		os.Exit(1)
	}
	rss := ledger.PeakRSSBytes()
	probe := scaleProbe{scaleEntry: scaleEntry{
		Workload: workload, Engine: engineName, Ranks: n, Workers: workers,
		VirtualSec: st.ElapsedVirtual, HostSec: host,
		PeakRSSBytes: rss, Messages: st.Messages,
		RanksPerSec: float64(n) / host,
	}}
	if rss > 0 {
		probe.RanksPerGB = float64(n) / (float64(rss) / (1 << 30))
	}
	if n <= 16 {
		probe.RankClocks = st.RankClocks
	}
	data, err := json.Marshal(probe)
	if err != nil {
		fmt.Fprintln(os.Stderr, "scale: marshal:", err)
		os.Exit(1)
	}
	fmt.Println(string(data))
}

// modeledTreeStep is the sweep workload: the communication skeleton of one
// treecode step (splitter allgather, neighbor body migration, branch-node
// allgather, force compute, diagnostics allreduce, step barrier) built
// entirely from blocking operations. No polling means the virtual schedule
// is a pure function of the message DAG, so both engines must produce it
// bit-identically — the property the parent verifies.
func modeledTreeStep(r *mp.Rank, steps, bodiesPerRank int) {
	n := r.Size()
	rng := r.Rng()
	const bodyBytes = 48
	samples := make([]float64, 8)
	diag := make([]float64, 4)
	for s := 0; s < steps; s++ {
		// Domain decomposition: every rank contributes key samples.
		for i := range samples {
			samples[i] = rng.Float64()
		}
		r.Allgather(samples)
		// Body migration to ring neighbors after the split moves.
		for d := 1; d <= 2; d++ {
			dst := (r.ID() + d) % n
			src := (r.ID() - d + n) % n
			migrated := int64(bodiesPerRank/(8*d)+1) * bodyBytes
			r.Send(dst, 100+d, nil, migrated)
			r.Recv(src, 100+d)
		}
		// Branch-node exchange seeds every rank's view of the global tree.
		r.AllgatherAny(nil, 64*bodyBytes)
		// Force evaluation: ~(N/p) log2 N interactions at 38 flops each.
		inter := float64(bodiesPerRank) * math.Log2(float64(bodiesPerRank*n))
		r.Charge(inter*38, 0.5, inter*32)
		// Conservation diagnostics and the step barrier.
		r.Allreduce(diag, mp.OpSum)
		r.Barrier()
	}
}

// collectiveSmoke exercises the collective stack on worlds past the modeled
// machine (the 1024-rank acceptance smoke).
func collectiveSmoke(r *mp.Rank, rounds int) {
	n := r.Size()
	buf := make([]float64, 8)
	for i := range buf {
		buf[i] = float64(r.ID()*len(buf) + i)
	}
	for s := 0; s < rounds; s++ {
		r.Barrier()
		got := r.Bcast(0, buf)
		sum := r.AllreduceScalar(got[0]+float64(r.ID()), mp.OpSum)
		all := r.Allgather([]float64{sum})
		if len(all) != n {
			panic("scale: allgather size mismatch")
		}
	}
}

// parseRankList parses "8,64,294" into rank counts, or returns def.
func parseRankList(s string, def []int) []int {
	if strings.TrimSpace(s) == "" {
		return def
	}
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n <= 0 {
			fmt.Fprintf(os.Stderr, "scale: bad rank count %q\n", f)
			os.Exit(2)
		}
		out = append(out, n)
	}
	return out
}

// diffScale is the scale arm of the bench-record diff: it gates ranks/sec
// regressions past frac on matching (workload, engine, ranks) entries and
// fails when the new record lost engine bit-identity. Only like-for-like
// sweeps gate — a -quick record against a full one is reported, not failed.
func diffScale(oldRep, newRep groupReport, oldPath string, frac float64) bool {
	ns := newRep.Scale
	if oldRep.Scale == nil {
		fmt.Printf("scale: baseline %s has no scale block; nothing to compare\n", oldPath)
		return true
	}
	osc := oldRep.Scale
	ok := true
	if !ns.BitIdentical {
		fmt.Printf("FAIL scale: new record is not bit-identical across engines\n")
		ok = false
	}
	key := func(e scaleEntry) string {
		return fmt.Sprintf("%s/%s/%d", e.Workload, e.Engine, e.Ranks)
	}
	oldBy := map[string]scaleEntry{}
	for _, e := range osc.Entries {
		oldBy[key(e)] = e
	}
	like := osc.Quick == ns.Quick && osc.Steps == ns.Steps && osc.BodiesPerRank == ns.BodiesPerRank
	fmt.Printf("scale sweep (allowed -%.0f%% ranks/sec):\n", 100*frac)
	fmt.Printf("  %-26s %12s %12s %8s\n", "config", "old r/s", "new r/s", "ratio")
	for _, e := range ns.Entries {
		oe, have := oldBy[key(e)]
		if !have {
			fmt.Printf("  %-26s %12s %12.1f %8s (no baseline)\n", key(e), "-", e.RanksPerSec, "-")
			continue
		}
		r := ratioOf(e.RanksPerSec, oe.RanksPerSec)
		verdict := ""
		if like && e.RanksPerSec < oe.RanksPerSec*(1-frac) {
			verdict = "  REGRESSION"
			ok = false
		}
		fmt.Printf("  %-26s %12.1f %12.1f %7.2fx%s\n", key(e), oe.RanksPerSec, e.RanksPerSec, r, verdict)
	}
	if ok {
		fmt.Println("scale: OK")
	}
	return ok
}

// writeScale merges the scale block into the benchmark record at path,
// preserving any existing blocks, raises it to at least schema_version 5,
// stamps the sweep's provenance, and appends the run to the ledger.
func writeScale(path string, sc scaleReport, cfg ledger.Config) {
	var rep groupReport
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &rep); err != nil {
			fmt.Fprintf(os.Stderr, "scale: existing %s unreadable: %v\n", path, err)
			os.Exit(1)
		}
	} else {
		// Fresh record holding only the scale study.
		rep.GOMAXPROCS = sc.GOMAXPROCS
		rep.N, rep.Theta, rep.Eps, rep.MaxLeaf = sc.BodiesPerRank, 0.7, 0.01, 16
	}
	if rep.SchemaVersion < scaleSchemaVersion {
		rep.SchemaVersion = scaleSchemaVersion
	}
	rep.Scale = &sc
	stampProvenance(&rep, cfg)
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "scale: marshal:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "scale:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (schema v%d, scale block with %d entries)\n", path, rep.SchemaVersion, len(sc.Entries))
	ledgerAppend(cfg, filepath.Base(path), path)
}
