package main

// `ssbench trend` — the cross-run history view. For each comparable run
// group (same config digest, same host) it prints the headline metrics'
// sparkline history and judges the newest run against the median/MAD of the
// runs before it. With -gate, any regression exits nonzero, turning the
// trend view into a CI gate that needs no explicit baseline file.

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"spacesim/internal/obs/ledger"
)

// trendCmd owns its flag set like diff does (see ownFlagCmds).
func trendCmd(args []string) {
	fs := flag.NewFlagSet("trend", flag.ExitOnError)
	dir := fs.String("ledger", *ledgerDir, "ledger directory to read")
	configFlag := fs.String("config", "", "only this config digest (prefix allowed)")
	hostFlag := fs.String("host", "", "only this host key (default: this host)")
	lastK := fs.Int("last", 10, "baseline window: most recent K runs before the newest")
	gate := fs.Bool("gate", false, "exit nonzero when the newest run of any group regressed")
	allHosts := fs.Bool("all-hosts", false, "include runs from every host, grouped separately")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: ssbench trend [-ledger DIR] [-config DIGEST] [-host KEY|-all-hosts] [-last K] [-gate]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	st := openLedgerAt(*dir)
	if st == nil {
		fmt.Fprintln(os.Stderr, "trend: no ledger")
		os.Exit(2)
	}
	recs, err := st.Records()
	if err != nil {
		fmt.Fprintln(os.Stderr, "trend:", err)
		os.Exit(2)
	}
	host := *hostFlag
	if host == "" && !*allHosts {
		host = ledger.Prov().HostKey()
	}

	// Group records by (config digest, host key), newest activity first.
	type group struct {
		digest, host string
		recs         []ledger.Record
	}
	byKey := map[string]*group{}
	var order []*group
	for _, r := range recs { // Records() is oldest→newest
		if *configFlag != "" && !prefixMatch(r.ConfigDigest, *configFlag) {
			continue
		}
		hk := r.Build.HostKey()
		if host != "" && hk != host {
			continue
		}
		k := r.ConfigDigest + "|" + hk
		g, ok := byKey[k]
		if !ok {
			g = &group{digest: r.ConfigDigest, host: hk}
			byKey[k] = g
			order = append(order, g)
		}
		g.recs = append(g.recs, r)
	}
	sort.SliceStable(order, func(i, j int) bool {
		return order[i].recs[len(order[i].recs)-1].TimeUnixNS >
			order[j].recs[len(order[j].recs)-1].TimeUnixNS
	})
	if len(order) == 0 {
		fmt.Printf("trend: no matching runs in %s\n", st.Dir)
		return
	}

	regressed := false
	for _, g := range order {
		latest := g.recs[len(g.recs)-1]
		fmt.Printf("config %.12s  %s/%s  host %s  %d runs (latest %s)\n",
			g.digest, latest.Config.Tool, latest.Config.Experiment, g.host, len(g.recs), latest.ID)
		trends := ledger.Trend(g.recs, *lastK)
		printTrends(trends)
		if ledger.AnyRegression(trends) {
			regressed = true
		}
		fmt.Println()
	}
	if *gate && regressed {
		fmt.Println("trend: FAIL (regression against the run history)")
		os.Exit(1)
	}
}

// printTrends renders per-metric trend rows: history sparkline, latest
// value, robust baseline, verdict.
func printTrends(trends []ledger.MetricTrend) {
	for _, t := range trends {
		verdict := string(t.Verdict)
		if t.Detail != "" {
			verdict += "  " + t.Detail
		}
		fmt.Printf("  %-26s %-12s latest %.6g  median %.6g  %s\n",
			t.Name, ledger.TextSparkline(t.Values), t.Latest, t.Median, verdict)
	}
}

// prefixMatch reports whether digest starts with the (possibly short) query.
func prefixMatch(digest, query string) bool {
	return len(query) <= len(digest) && digest[:len(query)] == query
}
