package main

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"spacesim/internal/core"
	"spacesim/internal/htree"
	"spacesim/internal/obs/ledger"
	"spacesim/internal/vec"
)

// benchSchemaVersion is the BENCH_treecode.json schema written once the
// treebuild block is merged in (see the history on groupReport).
const benchSchemaVersion = 4

// treebuildEntry is one timed pipeline configuration.
type treebuildEntry struct {
	Workers int     `json:"workers"`
	Seconds float64 `json:"seconds"`
	// SpeedupVsSeed is seed_seconds / seconds.
	SpeedupVsSeed float64           `json:"speedup_vs_seed"`
	Phases        htree.BuildPhases `json:"phases"`
}

// treebuildReport is the `treebuild` block of BENCH_treecode.json
// (schema_version 4): construction-phase timings of the parallel pipeline
// against the serial seed path, plus the bit-identity verdict.
type treebuildReport struct {
	N          int `json:"n"`
	MaxLeaf    int `json:"max_leaf"`
	GOMAXPROCS int `json:"gomaxprocs"`
	// SeedSeconds times the seed algorithm (serial keying, comparison
	// sort, map-based recursive build — htree.BuildReference, excluding
	// its flat-store conversion); SeedPhases is its breakdown.
	SeedSeconds float64           `json:"seed_seconds"`
	SeedPhases  htree.BuildPhases `json:"seed_phases"`
	Entries     []treebuildEntry  `json:"entries"`
	// BitIdentical reports whether every pipeline configuration produced
	// exactly the reference tree and accelerations (the run aborts when
	// it does not, so a written record always says true).
	BitIdentical bool `json:"bit_identical"`
}

// treebuildBench times tree construction — the seed serial path against the
// parallel pipeline at several worker counts — verifies bit-identity, and
// merges the results into the BENCH_treecode.json record (bumping it to
// schema_version 4).
func treebuildBench() {
	n := 32768
	reps := 5
	if *quick {
		n, reps = 4096, 3
	}
	maxLeaf := 16
	rng := rand.New(rand.NewSource(1))
	ics := core.PlummerSphere(rng, n, 1.0)
	pos := make([]vec.V3, n)
	mass := make([]float64, n)
	for i, b := range ics {
		pos[i], mass[i] = b.Pos, b.Mass
	}
	opt := htree.Options{MaxLeaf: maxLeaf}

	// Seed baseline: best-of-reps over the seed algorithm alone (the
	// reference path's flat-store conversion is excluded — it exists only
	// so the returned tree is walkable, see BuildReference).
	var ref *htree.Tree
	seedSec := math.Inf(1)
	var seedPhases htree.BuildPhases
	for r := 0; r < reps; r++ {
		tr, err := htree.BuildReference(pos, mass, opt)
		if err != nil {
			fmt.Fprintln(os.Stderr, "treebuild: reference build:", err)
			os.Exit(1)
		}
		if s := tr.Phases.Total() - tr.Phases.MergeSec; s < seedSec {
			seedSec, seedPhases = s, tr.Phases
		}
		ref = tr
	}
	if err := ref.CheckInvariants(); err != nil {
		fmt.Fprintln(os.Stderr, "treebuild: reference invariants:", err)
		os.Exit(1)
	}
	refAcc, refPot, _ := ref.AccelAll(0.7, 0.01, true)

	workerSet := []int{1, 2, 4}
	if nw := runtime.GOMAXPROCS(0); nw > 4 {
		workerSet = append(workerSet, nw)
	}
	rep := treebuildReport{
		N: n, MaxLeaf: maxLeaf, GOMAXPROCS: runtime.GOMAXPROCS(0),
		SeedSeconds: seedSec, SeedPhases: seedPhases,
		BitIdentical: true,
	}
	for _, w := range workerSet {
		o := opt
		o.Workers = w
		o.Arena = &htree.Arena{}
		var tr *htree.Tree
		best := math.Inf(1)
		var phases htree.BuildPhases
		// One extra warm-up rep charges the arena, so the timed builds see
		// the steady per-step rebuild cost.
		for r := 0; r < reps+1; r++ {
			t0 := time.Now()
			t, err := htree.Build(pos, mass, o)
			dt := time.Since(t0).Seconds()
			if err != nil {
				fmt.Fprintln(os.Stderr, "treebuild: build:", err)
				os.Exit(1)
			}
			tr = t
			if r > 0 && dt < best {
				best, phases = dt, t.Phases
			}
		}
		if err := tr.CheckInvariants(); err != nil {
			fmt.Fprintf(os.Stderr, "treebuild: workers=%d invariants: %v\n", w, err)
			os.Exit(1)
		}
		if !sameAsReference(ref, tr, refAcc, refPot) {
			fmt.Fprintf(os.Stderr, "treebuild: workers=%d NOT bit-identical to the serial reference\n", w)
			os.Exit(1)
		}
		rep.Entries = append(rep.Entries, treebuildEntry{
			Workers: w, Seconds: best,
			SpeedupVsSeed: seedSec / best,
			Phases:        phases,
		})
	}

	fmt.Printf("tree construction, Plummer N=%d, leaf=%d (best of %d, arena-warm)\n", n, maxLeaf, reps)
	fmt.Printf("%-14s %10s %10s %8s %8s %8s %8s %9s\n",
		"path", "time", "key", "sort", "build", "merge", "", "speedup")
	fmt.Printf("%-14s %9.2fms %8.2fms %6.2fms %6.2fms %6.2fms %8s %9s\n",
		"seed-serial", seedSec*1e3, seedPhases.KeySec*1e3, seedPhases.SortSec*1e3,
		seedPhases.BuildSec*1e3, 0.0, "", "1.00x")
	for _, e := range rep.Entries {
		fmt.Printf("pipeline w=%-3d %9.2fms %8.2fms %6.2fms %6.2fms %6.2fms %8s %8.2fx\n",
			e.Workers, e.Seconds*1e3, e.Phases.KeySec*1e3, e.Phases.SortSec*1e3,
			e.Phases.BuildSec*1e3, e.Phases.MergeSec*1e3, "", e.SpeedupVsSeed)
	}
	fmt.Printf("bit-identical to serial reference across workers %v: true\n", workerSet)

	writeTreebuild(rep, ledgerConfig("treebuild", n, 0, 0, 0, "pipeline", 1))
}

// sameAsReference checks tree equality (bodies and every cell) and
// bit-exact accelerations/potentials against the reference.
func sameAsReference(ref, tr *htree.Tree, refAcc []vec.V3, refPot []float64) bool {
	if len(ref.Bodies) != len(tr.Bodies) || ref.NumCells() != tr.NumCells() {
		return false
	}
	for i := range ref.Bodies {
		if ref.Bodies[i] != tr.Bodies[i] {
			return false
		}
	}
	acc, pot, _ := tr.AccelAll(0.7, 0.01, true)
	for i := range acc {
		if acc[i] != refAcc[i] || pot[i] != refPot[i] {
			return false
		}
	}
	return true
}

// isBenchFile reports whether the JSON file at path is a BENCH_treecode.json
// record rather than an ANALYSIS.json report — both carry a schema_version,
// so the discriminator is the bench-only top-level blocks. Unreadable or
// non-JSON files report false and are left for the analysis reader to
// diagnose.
func isBenchFile(path string) bool {
	data, err := os.ReadFile(path)
	if err != nil {
		return false
	}
	var probe map[string]json.RawMessage
	if err := json.Unmarshal(data, &probe); err != nil {
		return false
	}
	if _, ok := probe["results"]; ok {
		return true
	}
	if _, ok := probe["scale"]; ok {
		return true
	}
	if _, ok := probe["kernels"]; ok {
		return true
	}
	_, ok := probe["treebuild"]
	return ok
}

// readGroupReport loads a BENCH_treecode.json record, exiting with the
// diff usage code on unreadable input.
func readGroupReport(path string) groupReport {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "diff:", err)
		os.Exit(2)
	}
	var rep groupReport
	if err := json.Unmarshal(data, &rep); err != nil {
		fmt.Fprintf(os.Stderr, "diff: %s: %v\n", path, err)
		os.Exit(2)
	}
	return rep
}

// diffTreebuild is the treebuild arm of the bench-record diff: it compares
// the treebuild blocks of two BENCH_treecode.json records and reports false
// when construction time regressed past frac at any worker count, or when
// the new record is not bit-identical.
func diffTreebuild(oldRep, newRep groupReport, oldPath string, frac float64) bool {
	if oldRep.Treebuild == nil {
		fmt.Printf("treebuild: baseline %s has no treebuild block; nothing to compare\n", oldPath)
		return true
	}
	ok := true
	nb, ob := newRep.Treebuild, oldRep.Treebuild
	if !nb.BitIdentical {
		fmt.Printf("FAIL treebuild: new record is not bit-identical\n")
		ok = false
	}
	oldByW := map[int]treebuildEntry{}
	for _, e := range ob.Entries {
		oldByW[e.Workers] = e
	}
	fmt.Printf("treebuild construction (N=%d vs N=%d, allowed +%.0f%%):\n", ob.N, nb.N, 100*frac)
	fmt.Printf("  %-12s %10s %10s %8s\n", "config", "old", "new", "ratio")
	fmt.Printf("  %-12s %9.2fms %9.2fms %7.2fx\n", "seed-serial",
		ob.SeedSeconds*1e3, nb.SeedSeconds*1e3, ratioOf(nb.SeedSeconds, ob.SeedSeconds))
	for _, e := range nb.Entries {
		oe, have := oldByW[e.Workers]
		if !have {
			fmt.Printf("  %-12s %10s %9.2fms %8s (no baseline)\n",
				fmt.Sprintf("workers=%d", e.Workers), "-", e.Seconds*1e3, "-")
			continue
		}
		r := ratioOf(e.Seconds, oe.Seconds)
		verdict := ""
		// Only gate like-for-like problem sizes — a -quick record against a
		// full one is reported but not failed.
		if nb.N == ob.N && e.Seconds > oe.Seconds*(1+frac) {
			verdict = "  REGRESSION"
			ok = false
		}
		fmt.Printf("  %-12s %9.2fms %9.2fms %7.2fx%s\n",
			fmt.Sprintf("workers=%d", e.Workers), oe.Seconds*1e3, e.Seconds*1e3, r, verdict)
	}
	if ok {
		fmt.Println("treebuild: OK")
	}
	return ok
}

// ratioOf returns a/b guarding against a zero baseline.
func ratioOf(a, b float64) float64 {
	if b <= 0 {
		return 0
	}
	return a / b
}

// writeTreebuild merges the treebuild block into the benchmark record at
// *benchOut — preserving an existing group report's fields if the file is
// already there — bumps it to at least schema_version 4, stamps the writing
// invocation's provenance, and appends the run to the ledger.
func writeTreebuild(tb treebuildReport, cfg ledger.Config) {
	var rep groupReport
	if data, err := os.ReadFile(*benchOut); err == nil {
		if err := json.Unmarshal(data, &rep); err != nil {
			fmt.Fprintf(os.Stderr, "treebuild: existing %s unreadable: %v\n", *benchOut, err)
			os.Exit(1)
		}
	} else {
		// Fresh record with just the construction benchmark: mirror the
		// workload parameters at the top level.
		rep.N, rep.MaxLeaf, rep.GOMAXPROCS = tb.N, tb.MaxLeaf, tb.GOMAXPROCS
		rep.Theta, rep.Eps = 0.7, 0.01
	}
	// Merge order must not downgrade the record: a v5 file (scale block
	// present) keeps its version when only the treebuild block is refreshed.
	if rep.SchemaVersion < benchSchemaVersion {
		rep.SchemaVersion = benchSchemaVersion
	}
	rep.Treebuild = &tb
	stampProvenance(&rep, cfg)
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "treebuild: marshal:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*benchOut, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "treebuild: write:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *benchOut)
	ledgerAppend(cfg, filepath.Base(*benchOut), *benchOut)
}
