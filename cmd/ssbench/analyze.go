package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"

	"spacesim/internal/core"
	"spacesim/internal/machine"
	"spacesim/internal/netsim"
	"spacesim/internal/obs/analysis"
	"spacesim/internal/obs/ledger"
)

var analysisOut = flag.String("analysis-out", "ANALYSIS.json", "output path for the analyze experiment's report")

// analyzeCluster is a deliberately small two-module slice of the Space
// Simulator fabric: four ports per module, one module per chassis, so an
// 8-rank run exercises the NICs, both module backplanes, and the
// inter-switch trunk.
func analyzeCluster() machine.Cluster {
	topo := netsim.Topology{
		Nodes:           8,
		PortsPerModule:  4,
		ModulesSwitchA:  1,
		ModuleUplinkBps: 8e9,
		TrunkBps:        8e9,
		NICBps:          1e9,
		Efficiency:      0.65,
	}
	return machine.Cluster{
		Name:  "Space Simulator (2-module slice)",
		Nodes: 8,
		Node:  machine.SpaceSimulatorNode,
		Net:   netsim.MustNew(topo, netsim.ProfileLAM),
	}
}

// analyzeBench runs the treecode on the 2-module 8-rank slice with event
// retention on, then runs the trace analysis: critical path, per-phase
// efficiency, latency percentiles, and per-link utilization.
func analyzeBench() {
	n, steps := 8192, 2
	if *quick {
		n, steps = 2048, 1
	}
	runObs.EnableEvents()
	cl := analyzeCluster().WithObs(runObs)

	rng := rand.New(rand.NewSource(1))
	ics := core.PlummerSphere(rng, n, 1.0)
	res := core.Run(core.RunConfig{
		Cluster: cl, Procs: 8, Steps: steps,
		Opt: core.Options{Theta: 0.7, Eps: 0.01, DT: 1e-3, MaxLeaf: 16, Workers: 4},
	}, ics)

	rep, err := analysis.Analyze(runObs, cl, analysis.Options{})
	if err != nil {
		fmt.Fprintln(os.Stderr, "analyze:", err)
		os.Exit(1)
	}
	cfg := ledgerConfig("analyze", n, 8, steps, 4, "", 1)
	if rep.Provenance != nil {
		rep.Provenance.ConfigDigest = cfg.Digest()
	}
	fmt.Printf("treecode on %s: N=%d, 8 ranks, %d steps, virtual %.3f s, %.1f Gflop/s\n\n",
		cl.Name, n, res.Steps, res.ElapsedVirtual, res.Gflops)
	fmt.Print(rep.Render())
	if *analysisOut != "" {
		if err := rep.WriteJSON(*analysisOut); err != nil {
			fmt.Fprintln(os.Stderr, "analyze: write:", err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %s\n", *analysisOut)
		ledgerAppend(cfg, filepath.Base(*analysisOut), *analysisOut)
	}
}

// diffCmd compares two ANALYSIS.json files — or two BENCH_treecode.json
// records, detected by their schema_version field — and exits nonzero when
// the new run regressed past the thresholds. This is the CI perf gate.
func diffCmd(args []string) {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	th := analysis.DefaultThresholds()
	fs.Float64Var(&th.MakespanFrac, "makespan-frac", th.MakespanFrac,
		"allowed relative virtual-makespan increase")
	fs.Float64Var(&th.CategoryFrac, "category-frac", th.CategoryFrac,
		"allowed relative increase per critical-path category")
	fs.Float64Var(&th.LatencyP99Frac, "latency-p99-frac", th.LatencyP99Frac,
		"allowed relative message-latency p99 increase")
	fs.Float64Var(&th.EfficiencyDrop, "efficiency-drop", th.EfficiencyDrop,
		"allowed absolute parallel-efficiency drop")
	treebuildFrac := fs.Float64("treebuild-frac", 0.35,
		"allowed relative tree-construction time increase (bench records)")
	scaleFrac := fs.Float64("scale-frac", 0.5,
		"allowed relative ranks/sec drop in the engine scaling sweep (bench records)")
	kernelFrac := fs.Float64("kernel-frac", 0.5,
		"allowed relative ns/interaction increase per kernel configuration (bench records)")
	baseline := fs.Bool("baseline", false,
		"gate NEW.json against its ledger history instead of an OLD.json file")
	ledgerFlag := fs.String("ledger", *ledgerDir, "ledger directory for -baseline")
	lastK := fs.Int("last", 10, "baseline window: most recent K comparable runs")
	allowCross := fs.Bool("allow-cross-machine", false,
		"compare runs from different hosts/modeled machines anyway (normally refused)")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: ssbench diff [flags] OLD.json NEW.json")
		fmt.Fprintln(os.Stderr, "       ssbench diff -baseline [flags] NEW.json")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	th.AllowCrossMachine = *allowCross
	if *allowCross {
		fmt.Fprintln(os.Stderr, "diff: warning: -allow-cross-machine compares runs from different machines; deltas may be configuration drift, not regressions")
	}
	if *baseline {
		if fs.NArg() != 1 {
			fs.Usage()
			os.Exit(2)
		}
		diffBaseline(fs.Arg(0), *ledgerFlag, *lastK, *allowCross)
		return
	}
	if fs.NArg() != 2 {
		fs.Usage()
		os.Exit(2)
	}
	oldBench, newBench := isBenchFile(fs.Arg(0)), isBenchFile(fs.Arg(1))
	if oldBench != newBench {
		fmt.Fprintln(os.Stderr, "diff: cannot compare a bench record with an analysis report")
		os.Exit(2)
	}
	if oldBench {
		oldRep, newRep := readGroupReport(fs.Arg(0)), readGroupReport(fs.Arg(1))
		if newRep.Treebuild == nil && newRep.Scale == nil && newRep.Kernels == nil {
			fmt.Fprintf(os.Stderr, "diff: %s has no treebuild, scale, or kernels block (run `ssbench treebuild`, `ssbench scale`, or `ssbench kernels`)\n", fs.Arg(1))
			os.Exit(2)
		}
		ok := true
		if newRep.Treebuild != nil {
			ok = diffTreebuild(oldRep, newRep, fs.Arg(0), *treebuildFrac) && ok
		}
		if newRep.Scale != nil {
			ok = diffScale(oldRep, newRep, fs.Arg(0), *scaleFrac) && ok
		}
		if newRep.Kernels != nil {
			ok = diffKernels(oldRep, newRep, fs.Arg(0), *kernelFrac) && ok
		}
		if !ok {
			os.Exit(1)
		}
		return
	}
	oldR, err := analysis.ReadFile(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "diff:", err)
		os.Exit(2)
	}
	newR, err := analysis.ReadFile(fs.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "diff:", err)
		os.Exit(2)
	}
	d := analysis.Diff(oldR, newR, th)
	fmt.Print(d.Render())
	if !d.OK() {
		os.Exit(1)
	}
}

// diffBaseline is the ledger arm of the diff gate: it keys the NEW artifact
// back to its comparable ledger history (same config digest, same host
// unless crossed) and judges each headline metric against the median/MAD of
// the last K runs. Exit 1 on regression; an empty baseline passes with a
// note, so the gate is safe to enable before any history exists.
func diffBaseline(newPath, ledgerPath string, lastK int, allowCross bool) {
	data, err := os.ReadFile(newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "diff:", err)
		os.Exit(2)
	}
	prov, ok := ledger.ExtractProvenance(data)
	if !ok || prov.ConfigDigest == "" {
		fmt.Fprintf(os.Stderr, "diff: %s carries no provenance config digest; regenerate it with a current ssbench\n", newPath)
		os.Exit(2)
	}
	st := openLedgerAt(ledgerPath)
	if st == nil {
		fmt.Println("diff: ledger disabled or unavailable; no baseline to gate against")
		return
	}
	recs, err := st.Records()
	if err != nil {
		fmt.Fprintln(os.Stderr, "diff:", err)
		os.Exit(2)
	}
	var base []ledger.Record
	if allowCross {
		for _, r := range recs {
			if r.ConfigDigest == prov.ConfigDigest {
				base = append(base, r)
			}
		}
	} else {
		base = ledger.Comparable(recs, prov.ConfigDigest, ledger.Prov().HostKey())
	}
	// NEW may itself be the most recent ledgered artifact (the smoke gates a
	// file the run just recorded): drop the newest record holding these exact
	// bytes, keeping any earlier identical results as legitimate baseline.
	newDigest := ledger.BlobDigest(data)
	for i := len(base) - 1; i >= 0; i-- {
		if hasArtifactDigest(base[i], newDigest) {
			base = append(base[:i], base[i+1:]...)
			break
		}
	}
	if len(base) == 0 {
		fmt.Printf("diff: no comparable runs for config %.12s in %s; nothing to gate against\n",
			prov.ConfigDigest, st.Dir)
		return
	}
	trends := ledger.GateAgainst(base, ledger.ExtractMetrics(data), lastK)
	printTrends(trends)
	if ledger.AnyRegression(trends) {
		fmt.Printf("diff: FAIL (baseline of %d comparable runs)\n", len(base))
		os.Exit(1)
	}
	fmt.Printf("diff: OK vs baseline of %d comparable runs\n", len(base))
}

// hasArtifactDigest reports whether rec stored an artifact with digest.
func hasArtifactDigest(rec ledger.Record, digest string) bool {
	for _, d := range rec.Artifacts {
		if d == digest {
			return true
		}
	}
	return false
}
