package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"spacesim/internal/core"
	"spacesim/internal/machine"
	"spacesim/internal/netsim"
	"spacesim/internal/obs/analysis"
)

var analysisOut = flag.String("analysis-out", "ANALYSIS.json", "output path for the analyze experiment's report")

// analyzeCluster is a deliberately small two-module slice of the Space
// Simulator fabric: four ports per module, one module per chassis, so an
// 8-rank run exercises the NICs, both module backplanes, and the
// inter-switch trunk.
func analyzeCluster() machine.Cluster {
	topo := netsim.Topology{
		Nodes:           8,
		PortsPerModule:  4,
		ModulesSwitchA:  1,
		ModuleUplinkBps: 8e9,
		TrunkBps:        8e9,
		NICBps:          1e9,
		Efficiency:      0.65,
	}
	return machine.Cluster{
		Name:  "Space Simulator (2-module slice)",
		Nodes: 8,
		Node:  machine.SpaceSimulatorNode,
		Net:   netsim.MustNew(topo, netsim.ProfileLAM),
	}
}

// analyzeBench runs the treecode on the 2-module 8-rank slice with event
// retention on, then runs the trace analysis: critical path, per-phase
// efficiency, latency percentiles, and per-link utilization.
func analyzeBench() {
	n, steps := 8192, 2
	if *quick {
		n, steps = 2048, 1
	}
	runObs.EnableEvents()
	cl := analyzeCluster().WithObs(runObs)

	rng := rand.New(rand.NewSource(1))
	ics := core.PlummerSphere(rng, n, 1.0)
	res := core.Run(core.RunConfig{
		Cluster: cl, Procs: 8, Steps: steps,
		Opt: core.Options{Theta: 0.7, Eps: 0.01, DT: 1e-3, MaxLeaf: 16, Workers: 4},
	}, ics)

	rep, err := analysis.Analyze(runObs, cl, analysis.Options{})
	if err != nil {
		fmt.Fprintln(os.Stderr, "analyze:", err)
		os.Exit(1)
	}
	fmt.Printf("treecode on %s: N=%d, 8 ranks, %d steps, virtual %.3f s, %.1f Gflop/s\n\n",
		cl.Name, n, res.Steps, res.ElapsedVirtual, res.Gflops)
	fmt.Print(rep.Render())
	if *analysisOut != "" {
		if err := rep.WriteJSON(*analysisOut); err != nil {
			fmt.Fprintln(os.Stderr, "analyze: write:", err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %s\n", *analysisOut)
	}
}

// diffCmd compares two ANALYSIS.json files — or two BENCH_treecode.json
// records, detected by their schema_version field — and exits nonzero when
// the new run regressed past the thresholds. This is the CI perf gate.
func diffCmd(args []string) {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	th := analysis.DefaultThresholds()
	fs.Float64Var(&th.MakespanFrac, "makespan-frac", th.MakespanFrac,
		"allowed relative virtual-makespan increase")
	fs.Float64Var(&th.CategoryFrac, "category-frac", th.CategoryFrac,
		"allowed relative increase per critical-path category")
	fs.Float64Var(&th.LatencyP99Frac, "latency-p99-frac", th.LatencyP99Frac,
		"allowed relative message-latency p99 increase")
	fs.Float64Var(&th.EfficiencyDrop, "efficiency-drop", th.EfficiencyDrop,
		"allowed absolute parallel-efficiency drop")
	treebuildFrac := fs.Float64("treebuild-frac", 0.35,
		"allowed relative tree-construction time increase (bench records)")
	scaleFrac := fs.Float64("scale-frac", 0.5,
		"allowed relative ranks/sec drop in the engine scaling sweep (bench records)")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: ssbench diff [flags] OLD.json NEW.json")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	if fs.NArg() != 2 {
		fs.Usage()
		os.Exit(2)
	}
	oldBench, newBench := isBenchFile(fs.Arg(0)), isBenchFile(fs.Arg(1))
	if oldBench != newBench {
		fmt.Fprintln(os.Stderr, "diff: cannot compare a bench record with an analysis report")
		os.Exit(2)
	}
	if oldBench {
		oldRep, newRep := readGroupReport(fs.Arg(0)), readGroupReport(fs.Arg(1))
		if newRep.Treebuild == nil && newRep.Scale == nil {
			fmt.Fprintf(os.Stderr, "diff: %s has neither a treebuild nor a scale block (run `ssbench treebuild` or `ssbench scale`)\n", fs.Arg(1))
			os.Exit(2)
		}
		ok := true
		if newRep.Treebuild != nil {
			ok = diffTreebuild(oldRep, newRep, fs.Arg(0), *treebuildFrac) && ok
		}
		if newRep.Scale != nil {
			ok = diffScale(oldRep, newRep, fs.Arg(0), *scaleFrac) && ok
		}
		if !ok {
			os.Exit(1)
		}
		return
	}
	oldR, err := analysis.ReadFile(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "diff:", err)
		os.Exit(2)
	}
	newR, err := analysis.ReadFile(fs.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "diff:", err)
		os.Exit(2)
	}
	d := analysis.Diff(oldR, newR, th)
	fmt.Print(d.Render())
	if !d.OK() {
		os.Exit(1)
	}
}
