package main

// Run-ledger glue: every artifact-writing ssbench experiment appends a run
// record (config digest, provenance, headline metrics, artifact blob) to
// the local ledger. All writes are best-effort — the ledger lives strictly
// after the run's virtual clocks have stopped, and a failed append warns
// on stderr without failing the invocation.

import (
	"flag"
	"fmt"
	"os"
	"strconv"

	"spacesim/internal/obs/ledger"
)

var ledgerDir = flag.String("ledger", ledger.DefaultDir,
	"run-ledger directory for the cross-run history (empty disables ledger writes)")

// openLedger opens the invocation's ledger store, or nil when disabled or
// unopenable (warned once).
func openLedger() *ledger.Store {
	return openLedgerAt(*ledgerDir)
}

func openLedgerAt(dir string) *ledger.Store {
	if dir == "" {
		return nil
	}
	st, err := ledger.Open(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ledger:", err)
		return nil
	}
	return st
}

// ledgerConfig assembles the canonical config for an ssbench experiment.
// Only deterministic invocation parameters go in — the digest must be
// identical across repeated identical invocations on any machine.
func ledgerConfig(experiment string, n, ranks, steps, workers int, engine string, seed int64) ledger.Config {
	return ledger.Config{
		Tool:       "ssbench",
		Experiment: experiment,
		N:          n,
		Ranks:      ranks,
		Steps:      steps,
		Engine:     engine,
		Workers:    workers,
		Seed:       seed,
		Flags:      map[string]string{"quick": strconv.FormatBool(*quick)},
	}
}

// provFor returns the process provenance stamped with cfg's digest — the
// block the artifact writers embed so a bare artifact can be keyed back to
// its comparable ledger history.
func provFor(cfg ledger.Config) *ledger.Provenance {
	p := ledger.Prov()
	p.ConfigDigest = cfg.Digest()
	return &p
}

// benchProvSchemaVersion is the BENCH_treecode.json schema once the
// provenance block is stamped (see the history on groupReport).
const benchProvSchemaVersion = 7

// stampProvenance embeds cfg's provenance block into a bench record and
// raises the schema version accordingly (never downgrading a newer file).
func stampProvenance(rep *groupReport, cfg ledger.Config) {
	rep.Provenance = provFor(cfg)
	if rep.SchemaVersion < benchProvSchemaVersion {
		rep.SchemaVersion = benchProvSchemaVersion
	}
}

// ledgerAppend records one finished experiment: the artifact file at path
// is stored as a content-addressed blob, its headline metrics extracted,
// and a run record appended. Best-effort by contract.
func ledgerAppend(cfg ledger.Config, artifactName, artifactPath string) {
	st := openLedger()
	if st == nil {
		return
	}
	rec := &ledger.Record{Config: cfg, Build: ledger.Prov()}
	var artifacts map[string][]byte
	metrics := map[string]float64{}
	if artifactPath != "" {
		data, err := os.ReadFile(artifactPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ledger:", err)
			return
		}
		artifacts = map[string][]byte{artifactName: data}
		metrics = ledger.ExtractMetrics(data)
	}
	if rss := ledger.PeakRSSBytes(); rss > 0 {
		metrics["peak_rss_bytes"] = float64(rss)
	}
	rec.Metrics = metrics
	id, err := st.Append(rec, artifacts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ledger:", err)
		return
	}
	fmt.Printf("ledger: recorded run %s (config %s) in %s\n",
		id, rec.ConfigDigest[:12], st.Dir)
}
