package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"spacesim/internal/core"
	"spacesim/internal/gravity"
	"spacesim/internal/htree"
	"spacesim/internal/obs"
	"spacesim/internal/obs/analysis"
	"spacesim/internal/obs/ledger"
	"spacesim/internal/obs/live"
	"spacesim/internal/vec"
)

var benchOut = flag.String("o", "BENCH_treecode.json", "output path for the group benchmark JSON record")

// groupResult is one timed force-evaluation configuration.
type groupResult struct {
	Engine       string  `json:"engine"`
	Workers      int     `json:"workers"`
	Seconds      float64 `json:"seconds"`
	NsPerBody    float64 `json:"ns_per_body"`
	NsPerInter   float64 `json:"ns_per_interaction"`
	Interactions int64   `json:"interactions"`
	InterPerSec  float64 `json:"interactions_per_sec"`
}

// groupDistributed summarizes the virtual-time distributed run that the
// group benchmark performs to populate per-rank metrics.
type groupDistributed struct {
	Procs             int     `json:"procs"`
	Workers           int     `json:"workers"`
	Steps             int     `json:"steps"`
	ElapsedVirtualSec float64 `json:"elapsed_virtual_sec"`
	Gflops            float64 `json:"gflops"`
	MaxImbalance      float64 `json:"max_imbalance"`
	// WorkerUtilization is busy/(wall*workers) of the host-side eval pool,
	// derived from the core.pool.* counters.
	WorkerUtilization float64 `json:"worker_utilization"`
}

// groupReport is the BENCH_treecode.json payload.
//
// schema_version history:
//
//	1 — shared-memory engine comparison only (implicit; field absent)
//	2 — adds schema_version, the distributed run summary, and the embedded
//	    observability metrics snapshot (per-rank breakdown, interaction-list
//	    sizes, cache hit rates, worker-pool utilization)
//	3 — adds the trace-analysis summary of the distributed run (virtual
//	    makespan, parallel efficiency, critical-path breakdown, message
//	    latency p99); the metrics snapshot gains histograms
//	4 — adds the tree-construction benchmark block (`treebuild`): seed vs
//	    parallel-pipeline phase timings, speedups, and the bit-identity
//	    verdict. Written by `ssbench treebuild`, which merges into an
//	    existing record; the other blocks stay optional.
//	5 — adds the engine scaling block (`scale`): the rank-count sweep of
//	    the discrete-event scheduler against the goroutine oracle (host
//	    wall-clock, peak RSS, ranks/sec, ranks/GB per configuration) and
//	    its bit-identity verdict. Written by `ssbench scale`, which merges
//	    like treebuild does.
//	6 — adds the live-telemetry block (`live`): the time-series sampler's
//	    retained window (host/virtual time columns plus one ring per
//	    metric) and the final progress/ETA view. Written by any experiment
//	    run with -http / live sampling enabled.
//	7 — adds the build/host provenance block (`provenance`): go version,
//	    VCS revision, hostname, and the canonical config digest of the
//	    writing invocation (the key into the run ledger). Stamped by
//	    every writer.
//	8 — adds the kernel microbenchmark block (`kernels`): the batched-
//	    kernel sweep over kernel (body/cell) x variant (libm/Karp) x
//	    precision (float64/float32) x list length, the bit-identity
//	    verdict of the default float64 path against the seed evaluation,
//	    and the measured float32 error budget. Written by `ssbench
//	    kernels`, which merges like treebuild does.
type groupReport struct {
	SchemaVersion   int                  `json:"schema_version"`
	N               int                  `json:"n"`
	Theta           float64              `json:"theta"`
	Eps             float64              `json:"eps"`
	MaxLeaf         int                  `json:"max_leaf"`
	GOMAXPROCS      int                  `json:"gomaxprocs"`
	Results         []groupResult        `json:"results"`
	SpeedupW1       float64              `json:"speedup_grouped_w1_vs_per_body"`
	SpeedupWN       float64              `json:"speedup_grouped_wn_vs_per_body"`
	RmsDiffW1       float64              `json:"rms_acc_diff_grouped_vs_per_body"`
	MaxPotDiffRel   float64              `json:"max_rel_pot_diff_grouped_vs_per_body"`
	NsPerInterRatio float64              `json:"ns_per_interaction_per_body_over_grouped_w1"`
	Distributed     *groupDistributed    `json:"distributed,omitempty"`
	Metrics         *obs.MetricsSnapshot `json:"metrics,omitempty"`
	Analysis        *analysis.Summary    `json:"analysis,omitempty"`
	Treebuild       *treebuildReport     `json:"treebuild,omitempty"`
	Kernels         *kernelsReport       `json:"kernels,omitempty"`
	Scale           *scaleReport         `json:"scale,omitempty"`
	Live            *live.Dump           `json:"live,omitempty"`
	Provenance      *ledger.Provenance   `json:"provenance,omitempty"`
}

// groupBench times the per-body treewalk against the bucket-grouped one on a
// Plummer sphere and records the comparison in BENCH_treecode.json.
func groupBench() {
	n := 32768
	if *quick {
		n = 4096
	}
	theta, eps, maxLeaf := 0.7, 0.01, 16
	rng := rand.New(rand.NewSource(1))
	ics := core.PlummerSphere(rng, n, 1.0)
	pos := make([]vec.V3, n)
	mass := make([]float64, n)
	for i, b := range ics {
		pos[i], mass[i] = b.Pos, b.Mass
	}
	tr, err := htree.Build(pos, mass, htree.Options{MaxLeaf: maxLeaf})
	if err != nil {
		fmt.Fprintln(os.Stderr, "group: tree build:", err)
		os.Exit(1)
	}
	tr.SetObs(runObs)

	// best-of-3 wall time for each engine
	const reps = 3
	time3 := func(f func() (acc []vec.V3, pot []float64, inter int64)) (float64, []vec.V3, []float64, int64) {
		best := math.Inf(1)
		var acc []vec.V3
		var pot []float64
		var inter int64
		for r := 0; r < reps; r++ {
			t0 := time.Now()
			acc, pot, inter = f()
			if dt := time.Since(t0).Seconds(); dt < best {
				best = dt
			}
		}
		return best, acc, pot, inter
	}

	tP, accP, potP, interP := time3(func() ([]vec.V3, []float64, int64) {
		a, p, st := tr.AccelAll(theta, eps, true)
		return a, p, int64(st.CellInteractions + st.BodyInteractions)
	})
	t1, acc1, pot1, inter1 := time3(func() ([]vec.V3, []float64, int64) {
		a, p, st := tr.AccelAllGrouped(theta, eps, true, gravity.Float64, 1)
		return a, p, int64(st.CellInteractions + st.BodyInteractions)
	})
	nw := runtime.GOMAXPROCS(0)
	tN, accN, potN, interN := time3(func() ([]vec.V3, []float64, int64) {
		a, p, st := tr.AccelAllGrouped(theta, eps, true, gravity.Float64, nw)
		return a, p, int64(st.CellInteractions + st.BodyInteractions)
	})

	// accuracy cross-checks
	var sum2, ref2, maxPot float64
	for i := range accP {
		sum2 += acc1[i].Sub(accP[i]).Norm2()
		ref2 += accP[i].Norm2()
		if d := math.Abs(pot1[i]-potP[i]) / (1 + math.Abs(potP[i])); d > maxPot {
			maxPot = d
		}
	}
	rms := math.Sqrt(sum2 / ref2)
	for i := range accN {
		if accN[i] != acc1[i] || potN[i] != pot1[i] {
			fmt.Fprintf(os.Stderr, "group: workers=%d result differs from workers=1 at body %d\n", nw, i)
			os.Exit(1)
		}
	}

	mk := func(engine string, workers int, sec float64, inter int64) groupResult {
		return groupResult{
			Engine: engine, Workers: workers, Seconds: sec,
			NsPerBody:    sec / float64(n) * 1e9,
			NsPerInter:   sec / float64(inter) * 1e9,
			Interactions: inter,
			InterPerSec:  float64(inter) / sec,
		}
	}
	// Distributed virtual-time run over the same particle set: this is what
	// populates the per-rank compute/wait breakdown (and, with -trace, the
	// per-rank trace rows) in the embedded metrics snapshot.
	procs, steps, dw := 8, 2, 4
	if *quick {
		procs, steps = 4, 1
	}
	cl := ssCluster()
	runObs.EnableEvents()
	dres := core.Run(core.RunConfig{
		Cluster: cl, Procs: procs, Steps: steps,
		Opt: core.Options{Theta: theta, Eps: eps, DT: 1e-3, MaxLeaf: maxLeaf, Workers: dw},
	}, ics)
	// Trace analysis of the distributed run. Under `ssbench all` the shared
	// observer has already seen other runs, whose events would mix into this
	// one's timeline; detect that by checking the analysis makespan against
	// this run's virtual elapsed time and skip the summary when they differ.
	var asum *analysis.Summary
	if arep, err := analysis.Analyze(runObs, cl, analysis.Options{}); err == nil &&
		math.Abs(arep.MakespanSec-dres.ElapsedVirtual) <= 1e-9*dres.ElapsedVirtual {
		asum = arep.Summary()
	}
	snap := runObs.Snapshot()
	util := 0.0
	if wall, wk := snap.Counters["core.pool.wall_ns"], snap.Gauges["core.pool.workers"]; wall > 0 && wk > 0 {
		util = float64(snap.Counters["core.pool.busy_ns"]) / (float64(wall) * wk)
	}

	rep := groupReport{
		SchemaVersion: 3,
		N:             n, Theta: theta, Eps: eps, MaxLeaf: maxLeaf, GOMAXPROCS: nw,
		Analysis: asum,
		Distributed: &groupDistributed{
			Procs: procs, Workers: dw, Steps: dres.Steps,
			ElapsedVirtualSec: dres.ElapsedVirtual, Gflops: dres.Gflops,
			MaxImbalance: dres.MaxImbalance, WorkerUtilization: util,
		},
		Metrics: &snap,
		Results: []groupResult{
			mk("per-body", 1, tP, interP),
			mk("grouped", 1, t1, inter1),
			mk("grouped", nw, tN, interN),
		},
		SpeedupW1:       tP / t1,
		SpeedupWN:       tP / tN,
		RmsDiffW1:       rms,
		MaxPotDiffRel:   maxPot,
		NsPerInterRatio: (tP / float64(interP)) / (t1 / float64(inter1)),
	}
	if d := liveDump(); d != nil {
		rep.Live = d
		rep.SchemaVersion = 6
	}
	cfg := ledgerConfig("group", n, procs, steps, dw, "grouped", 1)
	stampProvenance(&rep, cfg)

	fmt.Printf("bucket-grouped treewalk, Plummer N=%d, theta=%.2f, leaf=%d (best of %d)\n", n, theta, maxLeaf, reps)
	fmt.Printf("%-10s %8s %10s %10s %10s %14s\n", "engine", "workers", "time", "ns/body", "ns/inter", "inter/s")
	for _, r := range rep.Results {
		fmt.Printf("%-10s %8d %9.3fs %10.1f %10.2f %14.3e\n",
			r.Engine, r.Workers, r.Seconds, r.NsPerBody, r.NsPerInter, r.InterPerSec)
	}
	fmt.Printf("speedup grouped/per-body: %.2fx (1 worker), %.2fx (%d workers)\n", rep.SpeedupW1, rep.SpeedupWN, nw)
	fmt.Printf("ns/interaction ratio (per-body / grouped w1): %.2fx\n", rep.NsPerInterRatio)
	fmt.Printf("accuracy: rms acc diff %.2e, max rel pot diff %.2e; workers=%d bit-identical to workers=1\n",
		rep.RmsDiffW1, rep.MaxPotDiffRel, nw)
	fmt.Printf("distributed run: %d ranks x %d workers, %d steps, virtual %.2f s, %.1f Gflop/s, imbalance %.2f, pool util %.0f%%\n",
		procs, dw, dres.Steps, dres.ElapsedVirtual, dres.Gflops, dres.MaxImbalance, 100*util)
	if asum != nil {
		fmt.Printf("analysis: critical path %.3fs over %d hops, parallel efficiency %.0f%%, msg latency p99 %.3gs\n",
			asum.CriticalPathSec, asum.CriticalPathHops, 100*asum.ParallelEfficiency, asum.MsgLatencyP99Sec)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "group: marshal:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*benchOut, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "group: write:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *benchOut)
	ledgerAppend(cfg, filepath.Base(*benchOut), *benchOut)
}
