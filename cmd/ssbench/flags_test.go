package main

import (
	"flag"
	"strings"
	"testing"
	"time"
)

// saveFlags snapshots every flag on the global set and restores it when
// the test ends, so parseInvocation tests can mutate the real registered
// flags (the ones main uses) without leaking state between tests.
func saveFlags(t *testing.T) {
	t.Helper()
	saved := map[string]string{}
	flag.CommandLine.VisitAll(func(f *flag.Flag) {
		// The test binary's own -test.* flags stay untouched (some have
		// zero values their Set rejects, e.g. -test.fuzztime "").
		if !strings.HasPrefix(f.Name, "test.") {
			saved[f.Name] = f.Value.String()
		}
	})
	t.Cleanup(func() {
		for name, val := range saved {
			if err := flag.CommandLine.Set(name, val); err != nil {
				t.Fatalf("restore -%s: %v", name, err)
			}
		}
	})
}

// TestFlagsBeforeSubcommand pins `ssbench -http ... -sample-every ... group`.
func TestFlagsBeforeSubcommand(t *testing.T) {
	saveFlags(t)
	cmd, rest, err := parseInvocation(flag.CommandLine,
		[]string{"-http", "127.0.0.1:0", "-sample-every", "5ms", "group"})
	if err != nil {
		t.Fatal(err)
	}
	if cmd != "group" || len(rest) != 0 {
		t.Fatalf("cmd=%q rest=%v, want group with no trailing args", cmd, rest)
	}
	if *httpAddr != "127.0.0.1:0" {
		t.Errorf("-http = %q, want 127.0.0.1:0", *httpAddr)
	}
	if *sampleEvery != 5*time.Millisecond {
		t.Errorf("-sample-every = %v, want 5ms", *sampleEvery)
	}
}

// TestFlagsAfterSubcommand pins `ssbench group -http ... -quick`: the
// documented (and Makefile-used) trailing-flag form must keep working.
func TestFlagsAfterSubcommand(t *testing.T) {
	saveFlags(t)
	cmd, rest, err := parseInvocation(flag.CommandLine,
		[]string{"group", "-http", "localhost:9090", "-sample-every", "50ms", "-quick"})
	if err != nil {
		t.Fatal(err)
	}
	if cmd != "group" || len(rest) != 0 {
		t.Fatalf("cmd=%q rest=%v, want group with no trailing args", cmd, rest)
	}
	if *httpAddr != "localhost:9090" {
		t.Errorf("-http = %q, want localhost:9090", *httpAddr)
	}
	if *sampleEvery != 50*time.Millisecond {
		t.Errorf("-sample-every = %v, want 50ms", *sampleEvery)
	}
	if !*quick {
		t.Error("-quick after the subcommand not applied")
	}
}

// TestFlagsMixedOrder pins flags split across both positions.
func TestFlagsMixedOrder(t *testing.T) {
	saveFlags(t)
	cmd, _, err := parseInvocation(flag.CommandLine,
		[]string{"-quick", "treebuild", "-http", ":0"})
	if err != nil {
		t.Fatal(err)
	}
	if cmd != "treebuild" {
		t.Fatalf("cmd = %q, want treebuild", cmd)
	}
	if !*quick {
		t.Error("-quick before the subcommand not applied")
	}
	if *httpAddr != ":0" {
		t.Errorf("-http = %q, want :0", *httpAddr)
	}
}

// TestOwnFlagCmdsBypassReparse pins that diff/faultsweep/scale keep their
// trailing arguments unparsed: `-ranks` is not a global flag, so a global
// re-parse would reject the invocation.
func TestOwnFlagCmdsBypassReparse(t *testing.T) {
	saveFlags(t)
	cmd, rest, err := parseInvocation(flag.CommandLine,
		[]string{"scale", "-ranks", "8,16", "-o", "out.json"})
	if err != nil {
		t.Fatal(err)
	}
	if cmd != "scale" {
		t.Fatalf("cmd = %q, want scale", cmd)
	}
	want := []string{"-ranks", "8,16", "-o", "out.json"}
	if len(rest) != len(want) {
		t.Fatalf("rest = %v, want %v", rest, want)
	}
	for i := range want {
		if rest[i] != want[i] {
			t.Fatalf("rest = %v, want %v", rest, want)
		}
	}
}

// TestNoSubcommand pins the empty invocation.
func TestNoSubcommand(t *testing.T) {
	saveFlags(t)
	cmd, rest, err := parseInvocation(flag.CommandLine, []string{"-quick"})
	if err != nil {
		t.Fatal(err)
	}
	if cmd != "" || len(rest) != 0 {
		t.Fatalf("cmd=%q rest=%v, want empty", cmd, rest)
	}
}
