package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"

	"spacesim/internal/core"
	"spacesim/internal/faults"
	"spacesim/internal/obs/ledger"
)

// FaultsweepSchemaVersion stamps FAULTSWEEP.json.
const FaultsweepSchemaVersion = 1

// FaultsweepReport is the machine-readable faultsweep artifact: how the
// checkpoint interval trades expected lost work against I/O overhead under
// one seeded fault schedule.
type FaultsweepReport struct {
	SchemaVersion int     `json:"schema_version"`
	Seed          int64   `json:"seed"`
	Accel         float64 `json:"accel"`
	Ranks         int     `json:"ranks"`
	Bodies        int     `json:"bodies"`
	Steps         int     `json:"steps"`
	// BaselineVirtualSec is the fault-free, checkpoint-free makespan (the
	// schedule horizon); ExpectedCrashes the analytic crash mean over it.
	BaselineVirtualSec float64 `json:"baseline_virtual_sec"`
	ExpectedCrashes    float64 `json:"expected_crashes"`
	// ScheduledCrashes is the number of crashes the drawn schedule holds.
	ScheduledCrashes int                `json:"scheduled_crashes"`
	Entries          []FaultsweepEntry  `json:"entries"`
	Provenance       *ledger.Provenance `json:"provenance,omitempty"`
}

// FaultsweepEntry is one checkpoint cadence's outcome.
type FaultsweepEntry struct {
	// IntervalSteps is the checkpoint cadence K.
	IntervalSteps int `json:"interval_steps"`
	// IOOverheadSec is the virtual disk time a fault-free run spends on
	// checkpoint writes at this cadence (rank 0; writes are parallel, so
	// this approximates the makespan cost).
	IOOverheadSec float64 `json:"io_overhead_sec"`
	// The recovery outcome under the shared fault schedule.
	Crashes          int     `json:"crashes"`
	Attempts         int     `json:"attempts"`
	RestoredSteps    []int   `json:"restored_steps,omitempty"`
	ReplayedSteps    int     `json:"replayed_steps"`
	LostVirtualSec   float64 `json:"lost_virtual_sec"`
	TotalVirtualSec  float64 `json:"total_virtual_sec"`
	CheckpointWrites int     `json:"checkpoint_writes"`
	CorruptStripes   int     `json:"corrupt_stripes"`
	// BitIdentical records whether the recovered state matched the
	// fault-free run exactly.
	BitIdentical bool `json:"bit_identical"`
}

// faultsweepCmd sweeps the checkpoint interval under a fixed seeded fault
// schedule on the 2-module 8-rank slice and writes the trade-off (expected
// lost work vs I/O overhead) as chart-able JSON.
func faultsweepCmd(args []string) {
	fs := flag.NewFlagSet("faultsweep", flag.ExitOnError)
	seed := fs.Int64("seed", 1, "fault schedule seed")
	accel := fs.Float64("accel", 0, "fault acceleration (0 = auto: ~1.5 expected crashes)")
	out := fs.String("o", "FAULTSWEEP.json", "output artifact path")
	quickF := fs.Bool("quick", false, "shrink the workload for a fast pass")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: ssbench faultsweep [-seed N] [-accel A] [-quick] [-o FAULTSWEEP.json]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	accelReq := *accel // requested, pre-calibration: the digestable input

	n, steps := 4096, 12
	if *quickF {
		n = 1024
	}
	cl := analyzeCluster()
	procs := 8
	rng := rand.New(rand.NewSource(2))
	ics := core.PlummerSphere(rng, n, 1.0)
	cfg := core.RunConfig{
		Cluster: cl, Procs: procs, Steps: steps,
		Opt:          core.Options{Theta: 0.7, Eps: 0.01, DT: 1e-3, MaxLeaf: 16},
		GatherBodies: true,
	}

	base := core.Run(cfg, ics)
	if base.Err != nil {
		fmt.Fprintln(os.Stderr, "faultsweep: baseline:", base.Err)
		os.Exit(1)
	}
	horizon := base.ElapsedVirtual

	// Auto-calibrate the acceleration so the schedule holds a crash or two:
	// the expectation is ~linear in accel at these probabilities.
	if *accel <= 0 {
		perUnitAccel := faults.ExpectedCrashes(faults.Options{Ranks: procs, Horizon: horizon, Accel: 1})
		*accel = 1.5 / perUnitAccel
	}
	sched := faults.New(faults.Options{Ranks: procs, Horizon: horizon, Seed: *seed, Accel: *accel})
	// A sweep without a crash measures nothing; double the acceleration
	// until the draw holds one.
	for tries := 0; sched.Count(faults.RankCrash) == 0 && tries < 8; tries++ {
		*accel *= 2
		sched = faults.New(faults.Options{Ranks: procs, Horizon: horizon, Seed: *seed, Accel: *accel})
	}
	rep := FaultsweepReport{
		SchemaVersion:      FaultsweepSchemaVersion,
		Seed:               *seed,
		Accel:              *accel,
		Ranks:              procs,
		Bodies:             n,
		Steps:              steps,
		BaselineVirtualSec: horizon,
		ExpectedCrashes:    faults.ExpectedCrashes(faults.Options{Ranks: procs, Horizon: horizon, Accel: *accel}),
		ScheduledCrashes:   sched.Count(faults.RankCrash),
	}
	fmt.Printf("faultsweep: 8 ranks, N=%d, %d steps, horizon %.3fs, accel %.3g — %d crash(es) scheduled\n",
		n, steps, horizon, *accel, rep.ScheduledCrashes)

	for _, k := range []int{1, 2, 4, 8} {
		dir, err := os.MkdirTemp("", "faultsweep-ck-")
		if err != nil {
			fmt.Fprintln(os.Stderr, "faultsweep:", err)
			os.Exit(1)
		}
		ckCfg := cfg
		ckCfg.Checkpoint = &core.CheckpointConfig{Dir: dir, Every: k}
		clean := core.Run(ckCfg, ics)
		os.RemoveAll(dir)
		if clean.Err != nil {
			fmt.Fprintln(os.Stderr, "faultsweep: clean run:", clean.Err)
			os.Exit(1)
		}

		dir, err = os.MkdirTemp("", "faultsweep-ck-")
		if err != nil {
			fmt.Fprintln(os.Stderr, "faultsweep:", err)
			os.Exit(1)
		}
		fCfg := ckCfg
		fCfg.Checkpoint = &core.CheckpointConfig{Dir: dir, Every: k}
		rec, st, err := core.RunRecovered(core.RecoveryConfig{
			RunConfig: fCfg,
			Injector:  faults.NewInjector(sched),
		}, ics)
		os.RemoveAll(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "faultsweep: recovery:", err)
			os.Exit(1)
		}

		e := FaultsweepEntry{
			IntervalSteps:    k,
			IOOverheadSec:    clean.CheckpointSec,
			Crashes:          st.Crashes,
			Attempts:         st.Attempts,
			RestoredSteps:    st.RestoredSteps,
			ReplayedSteps:    st.ReplayedSteps,
			LostVirtualSec:   st.LostVirtualSec,
			TotalVirtualSec:  st.TotalVirtualSec,
			CheckpointWrites: st.CheckpointWrites,
			CorruptStripes:   st.CorruptStripes,
			BitIdentical:     sweepBitIdentical(base, rec),
		}
		rep.Entries = append(rep.Entries, e)
		fmt.Printf("  K=%d: io overhead %.4fs, %d crash(es), lost %.4fs, replayed %d steps, total %.4fs, bit-identical %v\n",
			k, e.IOOverheadSec, e.Crashes, e.LostVirtualSec, e.ReplayedSteps, e.TotalVirtualSec, e.BitIdentical)
		if !e.BitIdentical {
			fmt.Fprintf(os.Stderr, "faultsweep: K=%d recovery diverged from the fault-free run\n", k)
			os.Exit(1)
		}
	}

	lcfg := ledger.Config{
		Tool: "ssbench", Experiment: "faultsweep",
		N: n, Ranks: procs, Steps: steps, Seed: *seed,
		Flags: map[string]string{
			"quick": strconv.FormatBool(*quickF),
			"accel": fmt.Sprint(accelReq),
		},
	}
	rep.Provenance = provFor(lcfg)
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "faultsweep:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(b, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "faultsweep:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *out)
	ledgerAppend(lcfg, filepath.Base(*out), *out)
}

// sweepBitIdentical compares gathered bodies and energy histories exactly.
func sweepBitIdentical(a, b core.Result) bool {
	if len(a.Bodies) != len(b.Bodies) || len(a.EnergyHistory) != len(b.EnergyHistory) {
		return false
	}
	for i := range a.Bodies {
		x, y := a.Bodies[i], b.Bodies[i]
		if x.ID != y.ID || x.Pos != y.Pos || x.Vel != y.Vel || x.Mass != y.Mass {
			return false
		}
	}
	for i := range a.EnergyHistory {
		if a.EnergyHistory[i] != b.EnergyHistory[i] {
			return false
		}
	}
	return true
}
