// Command ssbench regenerates every table and figure of the paper's
// evaluation. Each subcommand prints the paper's measured values next to
// this reproduction's modeled or simulated ones.
//
// Usage:
//
//	ssbench <experiment> [flags]
//
// Experiments: table1 table2 table3 table4 table5 table6 table7 fig2 fig3
// fig4 fig5 fig6 fig7 fig8 group kernels treebuild switch spec reliability
// moore all
package main

import (
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"spacesim/internal/cluster"
	"spacesim/internal/core"
	"spacesim/internal/cosmo"
	"spacesim/internal/hpl"
	"spacesim/internal/key"
	"spacesim/internal/machine"
	"spacesim/internal/netsim"
	"spacesim/internal/npb"
	"spacesim/internal/obs"
	"spacesim/internal/obs/ledger"
	"spacesim/internal/obs/live"
	"spacesim/internal/pario"
	"spacesim/internal/perfmodel"
	"spacesim/internal/reliability"
	"spacesim/internal/sph"
	"spacesim/internal/vec"
)

var (
	quick       = flag.Bool("quick", false, "shrink the simulated workloads for a fast pass")
	traceOut    = flag.String("trace", "", "write a Chrome trace_event JSON file of the run (enables the tracer)")
	metricsOut  = flag.String("metrics", "", "write a metrics snapshot JSON file of the run")
	cpuProfile  = flag.String("cpuprofile", "", "write a host-side CPU profile to this file")
	memProfile  = flag.String("memprofile", "", "write a host-side heap profile to this file on exit")
	httpAddr    = flag.String("http", "", "serve live telemetry (/metrics, /progress.json, /debug/pprof/) on this address during the run")
	sampleEvery = flag.Duration("sample-every", 250*time.Millisecond, "live-telemetry sampling period (with -http, or to embed a live block in the bench record)")
)

// runObs observes every cluster run of the invocation (see ssCluster); the
// tracer is attached only when -trace is set.
var runObs *obs.Obs

// liveSampler/liveServer are non-nil while -http live telemetry is on; the
// sampler snapshots runObs and the bench record embeds its final dump.
var (
	liveSampler *live.Sampler
	liveServer  *live.Server
)

// ownFlagCmds are the subcommands that own their argument parsing
// (positional file arguments or private flag sets), so the global
// after-the-experiment-name re-parse must leave their arguments alone.
var ownFlagCmds = map[string]bool{"diff": true, "faultsweep": true, "scale": true, "trend": true, "report": true}

// parseInvocation parses an ssbench argument vector (without the program
// name) against fs. Global flags are accepted both before and after the
// experiment name — `ssbench -http :0 group` and `ssbench group -http :0`
// are equivalent — except for ownFlagCmds, whose trailing arguments are
// returned unparsed. Returns the experiment name ("" when absent) and the
// positional arguments that follow it.
func parseInvocation(fs *flag.FlagSet, argv []string) (string, []string, error) {
	if err := fs.Parse(argv); err != nil {
		return "", nil, err
	}
	args := fs.Args()
	if len(args) == 0 {
		return "", nil, nil
	}
	cmd := args[0]
	if ownFlagCmds[cmd] {
		return cmd, args[1:], nil
	}
	if err := fs.Parse(args[1:]); err != nil {
		return cmd, nil, err
	}
	return cmd, fs.Args(), nil
}

func main() {
	cmd, rest, err := parseInvocation(flag.CommandLine, os.Args[1:])
	if err != nil {
		os.Exit(2)
	}
	if cmd == "" {
		usage()
		os.Exit(2)
	}
	switch cmd {
	case "diff":
		diffCmd(rest)
		return
	case "faultsweep":
		faultsweepCmd(rest)
		return
	case "scale":
		scaleCmd(rest)
		return
	case "trend":
		trendCmd(rest)
		return
	case "report":
		reportCmd(rest)
		return
	}
	runObs = obs.New(*traceOut != "")
	ledger.Prov().Stamp(runObs.Reg)
	startLive()
	defer writeObs()
	defer stopProfiles()
	defer stopLive()
	startProfiles()
	cmds := map[string]func(){
		"table1":      table1,
		"table2":      table2,
		"table3":      func() { npbTable("C", 64, []npb.Benchmark{npb.BT, npb.SP, npb.LU, npb.CG, npb.FT, npb.IS}) },
		"table4":      func() { npbTable("D", 256, []npb.Benchmark{npb.BT, npb.SP, npb.LU, npb.CG, npb.FT}) },
		"table5":      table5,
		"table6":      table6,
		"table7":      table7,
		"fig2":        fig2,
		"fig3":        fig3,
		"fig4":        func() { npbScaling("D", []int{16, 64, 256}) },
		"fig5":        func() { npbScaling("C", []int{4, 16, 64, 256}) },
		"fig6":        fig6,
		"fig7":        fig7,
		"fig8":        fig8,
		"group":       groupBench,
		"kernels":     kernelsBench,
		"treebuild":   treebuildBench,
		"analyze":     analyzeBench,
		"switch":      switchBackplane,
		"spec":        spec,
		"reliability": reliabilityReport,
		"moore":       moore,
	}
	if cmd == "all" {
		names := make([]string, 0, len(cmds))
		for n := range cmds {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			header(n)
			cmds[n]()
		}
		return
	}
	fn, ok := cmds[cmd]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", cmd)
		usage()
		os.Exit(2)
	}
	fn()
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: ssbench [-quick] [-ledger DIR] [-trace FILE] [-metrics FILE] [-http ADDR] [-sample-every DUR] [-cpuprofile FILE] [-memprofile FILE] <table1|table2|...|fig8|group|kernels|treebuild|analyze|diff|faultsweep|scale|trend|report|switch|spec|reliability|moore|all>")
	fmt.Fprintln(os.Stderr, "       (global flags are accepted before or after the experiment name)")
	fmt.Fprintln(os.Stderr, "       ssbench diff [flags] OLD.json NEW.json   (ANALYSIS.json or BENCH_treecode.json pairs)")
	fmt.Fprintln(os.Stderr, "       ssbench diff -baseline [flags] NEW.json  (gate NEW against its ledger history)")
	fmt.Fprintln(os.Stderr, "       ssbench scale [-quick] [-ranks 8,64,294] [-event-ranks 1024,2048] [-o BENCH_treecode.json]   (engine scaling sweep)")
	fmt.Fprintln(os.Stderr, "       ssbench trend [-ledger DIR] [-config DIGEST] [-last K] [-gate]   (per-metric history vs median/MAD baseline)")
	fmt.Fprintln(os.Stderr, "       ssbench report [-ledger DIR] -html FILE   (static HTML dashboard of the ledger)")
}

// startLive starts the live-telemetry sampler over runObs and, when -http
// is set, the exposition server. Without -http no sampler runs and the
// bench record carries no live block.
func startLive() {
	if *httpAddr == "" {
		return
	}
	liveSampler = live.NewSampler(runObs, live.Config{Every: *sampleEvery})
	liveSampler.Start()
	var mounts []live.Mount
	if st := openLedger(); st != nil {
		mounts = append(mounts, live.Mount{Prefix: "/runs", Handler: st.Handler()})
	}
	srv, err := live.Serve(*httpAddr, liveSampler, mounts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "http:", err)
		os.Exit(1)
	}
	liveServer = srv
	fmt.Printf("live telemetry on http://%s/ (metrics, progress.json, runs, debug/pprof)\n", srv.Addr())
}

// stopLive tears the live-telemetry pipeline down (final sample included).
func stopLive() {
	liveSampler.Stop()
	liveServer.Close()
}

// liveDump takes a final sample and returns the sampler's retained series,
// or nil when live telemetry is off — callers embed it as a bench-record
// `live` block.
func liveDump() *live.Dump {
	if liveSampler == nil {
		return nil
	}
	liveSampler.SampleNow()
	return liveSampler.Dump()
}

// startProfiles begins host-side pprof capture when requested.
func startProfiles() {
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cpuprofile:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "cpuprofile:", err)
			os.Exit(1)
		}
	}
}

// stopProfiles flushes the pprof outputs.
func stopProfiles() {
	if *cpuProfile != "" {
		pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "memprofile:", err)
			os.Exit(1)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "memprofile:", err)
			os.Exit(1)
		}
	}
}

// writeObs flushes the run's trace and metrics files, if requested.
func writeObs() {
	if *metricsOut != "" {
		if err := runObs.WriteMetricsFile(*metricsOut); err != nil {
			fmt.Fprintln(os.Stderr, "metrics:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote metrics to %s\n", *metricsOut)
	}
	if *traceOut != "" {
		if err := runObs.WriteTraceFile(*traceOut); err != nil {
			fmt.Fprintln(os.Stderr, "trace:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote trace to %s\n", *traceOut)
	}
}

func header(s string) {
	fmt.Printf("\n=== %s %s\n", s, strings.Repeat("=", 60-len(s)))
}

func ssCluster() machine.Cluster {
	return machine.SpaceSimulator(netsim.ProfileLAM).WithObs(runObs)
}

func table1() {
	b := cluster.SpaceSimulatorBOM()
	fmt.Print(b.Render())
	usd, frac := b.NetworkShare()
	fmt.Printf("Network per node: $%.0f (%.0f%%)   [paper: $728, 44%%]\n", usd, frac*100)
}

func table7() {
	fmt.Print(cluster.LokiBOM().Render())
}

func table2() {
	fmt.Printf("%-10s %10s %17s %17s %17s\n", "", "Normal", "Slow mem", "Slow CPU", "Overclock")
	for _, w := range perfmodel.Table2Workloads() {
		fmt.Println(perfmodel.Row(w))
		p := perfmodel.Table2Paper[w.Name]
		fmt.Printf("%-10s %10s   paper: (%.3f)        (%.3f)        (%.3f)\n", "", "", p[0], p[1], p[2])
	}
}

func table5() {
	fmt.Printf("%-28s %10s %10s %10s %10s\n", "Processor", "libm", "paper", "Karp", "paper")
	for i, c := range machine.Table5CPUs {
		fmt.Printf("%-28s %10.1f %10.1f %10.1f %10.1f\n",
			c.Name, c.KernelMflops(false), machine.Table5Paper[i][0],
			c.KernelMflops(true), machine.Table5Paper[i][1])
	}
}

func table6() {
	fmt.Printf("%-6s %-18s %6s %10s %10s %12s %12s\n",
		"Year", "Machine", "Procs", "Gflop/s", "paper", "Mflops/proc", "paper")
	for _, m := range machine.Table6Machines {
		fmt.Printf("%-6d %-18s %6d %10.2f %10.2f %12.1f %12.1f\n",
			m.Year, m.Name, m.Procs, m.Gflops(), m.PaperGflops,
			m.MflopsPerProc(), m.PaperMflopsPerProc)
	}
	// also run the real virtual-time treecode at reduced scale
	n := 20000
	procs := 32
	if *quick {
		n, procs = 4000, 8
	}
	rng := rand.New(rand.NewSource(1))
	ics := core.ColdSphere(rng, n, 1.0)
	res := core.Run(core.RunConfig{
		Cluster: ssCluster(), Procs: procs, Steps: 1,
		Opt: core.Options{Theta: 0.7, Eps: 0.01, DT: 1e-3, UseKarp: true},
	}, ics)
	fmt.Printf("\nvirtual-time treecode (cold sphere, N=%d, %d procs): %.1f Mflops/proc, imbalance %.2f\n",
		n, procs, res.MflopsPerProc, res.MaxImbalance)
}

func fig2() {
	fmt.Printf("%-14s", "bytes")
	for _, p := range netsim.AllProfiles() {
		fmt.Printf(" %14s", p.Name)
	}
	fmt.Println()
	for _, sz := range []int64{1, 16, 256, 4096, 65536, 1 << 20, 8 << 20} {
		fmt.Printf("%-14d", sz)
		for _, p := range netsim.AllProfiles() {
			fmt.Printf(" %14.1f", p.Bandwidth(sz)/1e6)
		}
		fmt.Println(" Mb/s")
	}
	fmt.Println("paper: TCP peaks at 779 Mb/s; latencies 79 (TCP), 83 (LAM), 87 (mpich) us")
}

func switchBackplane() {
	net := netsim.MustNew(netsim.SpaceSimulatorTopology(), netsim.ProfileTCP)
	flows := net.Topo.CrossModuleFlows(0, 1)
	fmt.Printf("16->16 cross-module aggregate: %.0f Mb/s   [paper: ~6000]\n",
		net.AggregateBandwidth(flows)/1e6)
	for _, dim := range []int{0, 2, 4, 6, 8} {
		f := netsim.HypercubePairs(294, dim)
		fmt.Printf("hypercube dim %d (%3d flows): %8.0f Mb/s aggregate\n",
			dim, len(f), net.AggregateBandwidth(f)/1e6)
	}
}

func fig3() {
	oct, apr := hpl.October2002(), hpl.April2003()
	fmt.Printf("%-36s model %8.1f Gflop/s   paper 665.1\n", oct.Name, hpl.ModelGflops(oct))
	fmt.Printf("%-36s model %8.1f Gflop/s   paper 757.1\n", apr.Name, hpl.ModelGflops(apr))
	c := ssCluster()
	fmt.Printf("price/performance at April rate: $%.3f/Mflops  [paper: $0.639]\n",
		c.DollarsPerMflops(hpl.ModelGflops(apr)*1e9))
	// real distributed LU at small scale
	p, n, nb := 8, 192, 16
	if *quick {
		p, n = 4, 96
	}
	res, err := hpl.RunParallel(c, p, n, nb, 7)
	if err != nil {
		fmt.Println("parallel LU:", err)
		return
	}
	fmt.Printf("distributed LU (N=%d, %d ranks): residual %.2f (pass<16), %.2f virtual Gflop/s\n",
		n, p, res.Residual, res.Gflops)
}

func npbTable(class string, procs int, benches []npb.Benchmark) {
	paper := map[string]map[npb.Benchmark][2]float64{
		"C": {npb.BT: {17032, 22540}, npb.SP: {7822, 17775}, npb.LU: {27942, 40916},
			npb.CG: {3291, 4129}, npb.FT: {9860, 7275}, npb.IS: {232, 286}},
		"D": {npb.BT: {63044, 80418}, npb.SP: {29348, 55327}, npb.LU: {81472, 135650},
			npb.CG: {4913, 10149}, npb.FT: {21995, 30100}},
	}
	if *quick && procs > 64 {
		procs = 64
	}
	fmt.Printf("%-4s %12s %12s %12s   (%d procs, class %s)\n", "", "model SS", "paper SS", "paper Q", procs, class)
	for _, b := range benches {
		res, err := npb.Run(b, ssCluster(), procs, class)
		if err != nil {
			fmt.Printf("%-4s error: %v\n", b, err)
			continue
		}
		pp := paper[class][b]
		status := "ok"
		if !res.Verified {
			status = "VERIFY-FAIL " + res.VerifyDetail
		}
		fmt.Printf("%-4s %12.0f %12.0f %12.0f   %s\n", b, res.MopsTotal, pp[0], pp[1], status)
	}
}

func npbScaling(class string, procs []int) {
	benches := []npb.Benchmark{npb.BT, npb.SP, npb.LU, npb.CG, npb.FT}
	if *quick {
		procs = procs[:len(procs)-1]
	}
	fmt.Printf("per-processor Mop/s (class %s)\n%-4s", class, "")
	for _, p := range procs {
		fmt.Printf(" %10d", p)
	}
	fmt.Println(" procs")
	for _, b := range benches {
		fmt.Printf("%-4s", b)
		for _, p := range procs {
			res, err := npb.Run(b, ssCluster(), p, class)
			if err != nil {
				fmt.Printf(" %10s", "err")
				continue
			}
			fmt.Printf(" %10.1f", res.MopsPerProc)
		}
		fmt.Println()
	}
}

func fig6() {
	// Render the Morton curve through a centrally condensed 2-D particle
	// set as ASCII, plus the induced tree cell counts per level.
	rng := rand.New(rand.NewSource(2))
	const g = 32
	occupied := map[[2]int]rune{}
	type pt struct {
		k    key.K
		x, y int
	}
	var pts []pt
	for i := 0; i < 300; i++ {
		r := rng.ExpFloat64() * 0.15
		th := 2 * math.Pi * rng.Float64()
		x, y := 0.5+r*cosApprox(th), 0.5+r*sinApprox(th)
		if x < 0 || x >= 1 || y < 0 || y >= 1 {
			continue
		}
		k := key.FromPosition(vec.V3{x, y, 0.5}, vec.V3{0, 0, 0}, 1)
		pts = append(pts, pt{k, int(x * g), int(y * g)})
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].k < pts[j].k })
	for i, p := range pts {
		occupied[[2]int{p.x, p.y}] = rune('a' + i%26)
	}
	for y := g - 1; y >= 0; y-- {
		row := make([]rune, g)
		for x := 0; x < g; x++ {
			if r, ok := occupied[[2]int{x, y}]; ok {
				row[x] = r
			} else {
				row[x] = '.'
			}
		}
		fmt.Println(string(row))
	}
	fmt.Println("(letters advance along the Morton key order: nearby cells share letters)")
}

func fig7() {
	m := pario.Fig7Run()
	fmt.Printf("production-run model: %d procs, %.0f h, %.1f TB saved\n",
		m.Procs, m.HoursElapsed, m.BytesSaved/1e12)
	fmt.Printf("  avg I/O rate %.0f MB/s [paper 417], peak %.1f GB/s [paper ~7], sustained %.0f Gflop/s [paper 112]\n",
		m.AvgIORate()/1e6, m.PeakIORate()/1e9, m.AvgFlops()/1e9)
	// scaled-down end-to-end pipeline: ICs -> evolve -> halos -> xi(r)
	gridN := 16
	if *quick {
		gridN = 8
	}
	c := cosmo.EdS()
	ics := cosmo.GenerateICs(c, cosmo.ICOptions{GridN: gridN, BoxMpch: 32, AStart: 0.15, Seed: 9})
	fmt.Printf("ICs: %d particles, sigma8=%.2f box=32 Mpc/h\n", len(ics.Bodies), c.Sigma8)
	res := core.Run(core.RunConfig{
		Cluster: ssCluster(), Procs: 8, Steps: 6,
		Opt:          core.Options{Theta: 0.7, Eps: 0.3, DT: 0.6},
		GatherBodies: true,
	}, ics.Bodies)
	pos := make([]vec.V3, len(res.Bodies))
	mass := make([]float64, len(res.Bodies))
	for i, b := range res.Bodies {
		pos[i], mass[i] = b.Pos, b.Mass
	}
	link := 0.2 * 32 / float64(gridN)
	halos := cosmo.FoFGroups(pos, mass, link, 10)
	fmt.Printf("evolved %d steps (virtual %.1f s, %.1f modeled Gflop/s); %d halos with >=10 particles\n",
		res.Steps, res.ElapsedVirtual, res.Gflops, len(halos))
	r, xi := cosmo.TwoPointCorrelation(pos, 32, 0.5, 8, 5)
	for i := range r {
		fmt.Printf("  xi(%.2f Mpc/h) = %+.2f\n", r[i], xi[i])
	}
}

func fig8() {
	n := 1500
	if *quick {
		n = 600
	}
	s := sph.NewRotatingCollapse(sph.RotatingCollapseOptions{
		N: n, Omega: 0.3, PressureDeficit: 0.85, Seed: 3,
	})
	steps, bounced := s.RunUntilBounce(300)
	d := s.Diag()
	fmt.Printf("rotating collapse: N=%d, bounce=%v after %d steps, maxRho=%.2f (nuc %.2f)\n",
		n, bounced, steps, d.MaxRho, s.Cfg.EOS.RhoNuc)
	prof := s.AngularMomentumByAngle(6)
	fmt.Println("specific angular momentum |j_z| by polar angle (pole -> equator):")
	for b, j := range prof {
		fmt.Printf("  %2d-%2d deg: %.4g\n", b*15, (b+1)*15, j)
	}
	fmt.Printf("equator/pole ratio: %.0fx   [paper: ~2 orders of magnitude]\n", prof[5]/prof[0])
	fmt.Printf("neutrino energy: %.3g (radiated from the hot core via FLD)\n", d.Neutrino)
}

func spec() {
	r := perfmodel.SPEC()
	fmt.Printf("SPECfp2000 %.0f, SPECint2000 %.0f (node $%.0f): $%.2f/SPECfp [paper $1.20]\n",
		r.SPECfp, r.SPECint, r.NodeCostUSD, r.DollarsPerSPECfp)
	fmt.Printf("%s at SPECfp %.0f must cost < $%.0f to match [paper ~$2500]\n",
		r.FastestSystem, r.FastestSPECfp, r.BreakEvenPriceUSD)
	fmt.Printf("July 2003 node price: $%.2f/SPECfp [paper: better than $1.00]\n", r.JulyDollarsPerSPECf)
}

func reliabilityReport() {
	instE, opE := reliability.ExpectedCounts(294, 9)
	fmt.Println("expected failures (calibrated rates) vs paper:")
	fmt.Println(" install:")
	for c, want := range reliability.PaperObserved.Install {
		fmt.Printf("   %-18s %.1f  [paper %d]\n", c, instE[c], want)
	}
	fmt.Println(" nine months:")
	for c, want := range reliability.PaperObserved.NineMonths {
		fmt.Printf("   %-18s %.1f  [paper %d]\n", c, opE[c], want)
	}
	sim := reliability.Simulate(reliability.Options{Seed: 1})
	fmt.Printf("one Monte-Carlo draw: %d events; SMART predicted %.0f%% of disk failures\n",
		len(sim.Events), 100*sim.SMARTPredictedFraction())
	fmt.Printf("availability: %.3f%% (PDU + 2 power outages)\n",
		100*reliability.Availability(9, reliability.PaperDowntime()))
}

func moore() {
	c := cluster.Components(cluster.LokiBOM(), cluster.SpaceSimulatorBOM(), 6)
	fmt.Printf("disk: $%.0f/GB (1996) -> $%.2f/GB (2002): %.0fx = %.1fx beyond Moore [paper ~7x]\n",
		c.DiskUSDPerGBOld, c.DiskUSDPerGBNew, c.DiskRatio, c.DiskVsMoore)
	fmt.Printf("RAM:  $%.2f/MB -> $%.2f/MB: %.0fx = %.1fx beyond Moore [paper ~2x]\n",
		c.RAMUSDPerMBOld, c.RAMUSDPerMBNew, c.RAMRatio, c.RAMVsMoore)
	for _, r := range cluster.NPBComparisons() {
		fmt.Printf("NPB %s class B 16p: %.0f -> %.0f Mop/s (%.1fx), price/perf %.2fx Moore\n",
			r.Benchmark, r.LokiMops, r.SSMops, r.Improvement, r.PricePerfVsMoore)
	}
	tm := cluster.TreecodeMoore()
	fmt.Printf("treecode: %.1f -> %.0f Gflop/s = %.0fx vs %.0fx predicted (price x Moore): ratio %.2f\n",
		tm.LokiGflops, tm.SSGflops, tm.Improvement, tm.MoorePrediction, tm.ImprovementVsPredicted)
}

func cosApprox(x float64) float64 { return math.Cos(x) }
func sinApprox(x float64) float64 { return math.Sin(x) }
