// Command spacesim runs a parallel N-body simulation with the hashed
// oct-tree code on the modeled Space Simulator cluster and reports
// conservation diagnostics and modeled performance.
//
// Usage:
//
//	spacesim [-n 4000] [-procs 16] [-steps 10] [-dt 0.005] [-theta 0.7]
//	         [-ic plummer|coldsphere] [-karp] [-precision float64|float32]
//	         [-checkpoint dir]
//	         [-faults seed] [-fault-accel 50] [-checkpoint-every 2]
//	         [-verify-recovery]
//	         [-trace trace.json] [-metrics metrics.json]
//	         [-report] [-analysis ANALYSIS.json]
//	         [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//	         [-http 127.0.0.1:8080] [-sample-every 250ms]
//
// With -http, a live-telemetry server runs for the duration: /metrics
// (Prometheus text), /metrics.json, /series.json (sampled time series),
// /progress.json (step fraction, rate, ETA), and /debug/pprof/. With
// -report, the sampler's final series dump lands in the ANALYSIS.json
// "live" block.
//
// With -faults, a seeded fault schedule (drawn from the paper's Section 2.1
// hazard rates, accelerated by -fault-accel) is injected into the run:
// rank crashes recover through checkpoint rollback (cadence
// -checkpoint-every steps), and -verify-recovery additionally runs an
// uninterrupted twin and fails unless the recovered state matches it bit
// for bit.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sync/atomic"
	"syscall"
	"time"

	"spacesim/internal/core"
	"spacesim/internal/faults"
	"spacesim/internal/gravity"
	"spacesim/internal/machine"
	"spacesim/internal/mp"
	"spacesim/internal/netsim"
	"spacesim/internal/obs"
	"spacesim/internal/obs/analysis"
	"spacesim/internal/obs/ledger"
	"spacesim/internal/obs/live"
	"spacesim/internal/pario"
)

func main() {
	var (
		n       = flag.Int("n", 4000, "number of bodies")
		procs   = flag.Int("procs", 16, "virtual processors (max 294)")
		steps   = flag.Int("steps", 10, "leapfrog steps")
		dt      = flag.Float64("dt", 0.005, "timestep (N-body units)")
		theta   = flag.Float64("theta", 0.7, "multipole acceptance parameter")
		eps     = flag.Float64("eps", 0.01, "Plummer softening")
		ic      = flag.String("ic", "plummer", "initial condition: plummer|coldsphere")
		karp    = flag.Bool("karp", false, "use the Karp reciprocal sqrt kernel")
		prec    = flag.String("precision", "float64", "force-kernel accumulation precision: float64|float32")
		seed    = flag.Int64("seed", 1, "RNG seed")
		ckpt    = flag.String("checkpoint", "", "directory for a final striped checkpoint")
		fSeed   = flag.Int64("faults", 0, "inject a seeded fault schedule (0 = off)")
		fAccel  = flag.Float64("fault-accel", faults.DefaultAccel, "fault acceleration: component-months of hazard per virtual second")
		ckEvery = flag.Int("checkpoint-every", 2, "recovery checkpoint cadence in steps (with -faults)")
		verify  = flag.Bool("verify-recovery", false, "with -faults: require >=1 crash and bit-identical recovery vs an uninterrupted twin")
		trace   = flag.String("trace", "", "write a Chrome trace_event JSON file of the run")
		metrics = flag.String("metrics", "", "write a metrics snapshot JSON file of the run")
		report  = flag.Bool("report", false, "retain structured telemetry and print the trace analysis")
		aOut    = flag.String("analysis", "ANALYSIS.json", "analysis report path (with -report)")
		cpuProf = flag.String("cpuprofile", "", "write a host-side CPU profile to this file")
		memProf = flag.String("memprofile", "", "write a host-side heap profile to this file on exit")
		engine  = flag.String("engine", "goroutine", "rank runtime: goroutine (oracle) or event (discrete-event scheduler)")
		engineW = flag.Int("engine-workers", 0, "event-engine worker pool size (0 = host cores; 1 = fully reproducible schedules)")
		httpA   = flag.String("http", "", "serve live telemetry (metrics, progress, series, pprof) on this address during the run")
		sampleE = flag.Duration("sample-every", 250*time.Millisecond, "live sampler cadence (with -http)")
		ledgerD = flag.String("ledger", ledger.DefaultDir, "run-ledger directory for the cross-run history (empty disables ledger writes)")
	)
	flag.Parse()
	eng, err := mp.ParseEngine(*engine)
	if err != nil {
		log.Fatal(err)
	}
	precision, err := gravity.ParsePrecision(*prec)
	if err != nil {
		log.Fatal(err)
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			log.Fatalf("cpuprofile: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatalf("cpuprofile: %v", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				log.Fatalf("memprofile: %v", err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Fatalf("memprofile: %v", err)
			}
		}()
	}

	ics, err := core.MakeICs(*ic, *seed, *n)
	if err != nil {
		log.Fatal(err)
	}

	// Graceful interrupt: the first SIGINT/SIGTERM raises a flag that rank
	// 0 polls at step boundaries — the run checkpoints (when enabled),
	// gathers its partial state, and the process flushes artifacts and
	// exits nonzero. A second signal force-quits immediately.
	var stopFlag atomic.Bool
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigc
		stopFlag.Store(true)
		fmt.Fprintln(os.Stderr, "spacesim: signal: stopping at the next step boundary (send again to force quit)")
		<-sigc
		fmt.Fprintln(os.Stderr, "spacesim: second signal: force quit")
		os.Exit(130)
	}()

	// Live telemetry: a background sampler snapshots the metrics registry
	// into ring-buffer series, served over HTTP during the run. newObs
	// re-points the sampler whenever the fault path starts a fresh
	// observation segment, so the series stay continuous across restarts.
	var sampler *live.Sampler
	newObs := func() *obs.Obs {
		o := obs.New(*trace != "")
		if *report {
			o.EnableEvents()
		}
		ledger.Prov().Stamp(o.Reg)
		sampler.SetObs(o)
		return o
	}
	o := newObs()
	if *httpA != "" {
		sampler = live.NewSampler(o, live.Config{Every: *sampleE})
		sampler.Start()
		defer sampler.Stop()
		var mounts []live.Mount
		if *ledgerD != "" {
			if st, err := ledger.Open(*ledgerD); err == nil {
				mounts = append(mounts, live.Mount{Prefix: "/runs", Handler: st.Handler()})
			}
		}
		srv, err := live.Serve(*httpA, sampler, mounts...)
		if err != nil {
			log.Fatalf("http: %v", err)
		}
		defer srv.Close()
		fmt.Printf("live telemetry: http://%s/ (metrics, progress.json, series.json, runs, debug/pprof)\n", srv.Addr())
	}
	// The canonical run configuration: everything that makes two invocations
	// comparable in the ledger. Host-dependent values stay out by design.
	lcfg := ledger.Config{
		Tool: "spacesim", Experiment: "run", Scenario: *ic,
		N: *n, Ranks: *procs, Steps: *steps,
		Engine: *engine, Workers: *engineW, Seed: *seed,
		Flags: map[string]string{
			"theta": fmt.Sprint(*theta), "dt": fmt.Sprint(*dt),
			"eps": fmt.Sprint(*eps), "karp": fmt.Sprint(*karp),
			"precision": precision.String(),
		},
	}
	if *fSeed != 0 {
		lcfg.Flags["faults"] = fmt.Sprint(*fSeed)
		lcfg.Flags["fault_accel"] = fmt.Sprint(*fAccel)
		lcfg.Flags["checkpoint_every"] = fmt.Sprint(*ckEvery)
	}

	cl := machine.SpaceSimulator(netsim.ProfileLAM).WithObs(o)
	cfg := core.RunConfig{
		Cluster: cl, Procs: *procs, Steps: *steps,
		Opt: core.Options{
			Theta: *theta, Eps: *eps, DT: *dt, UseKarp: *karp,
			Precision: precision,
		},
		GatherBodies: *ckpt != "" || *fSeed != 0,
		Engine:       eng, EngineWorkers: *engineW,
		Interrupt: stopFlag.Load,
	}

	var res core.Result
	var faultRep *analysis.FaultSummary
	if *fSeed != 0 {
		res, faultRep = runWithFaults(cfg, ics, *fSeed, *fAccel, *ckEvery, *verify, newObs)
		// Report from the completing segment's observation handle.
		o = res.Comm.Obs
	} else {
		res = core.Run(cfg, ics)
		if res.Err != nil {
			log.Fatalf("run failed: %v", res.Err)
		}
	}

	if res.Interrupted {
		fmt.Fprintf(os.Stderr, "spacesim: interrupted at step %d/%d — flushing partial state\n",
			res.CompletedSteps, *steps)
	}
	// On an interrupted run only the completed steps carry diagnostics.
	hist := res.EnergyHistory[:res.CompletedSteps+1]
	e0 := hist[0]
	eN := hist[len(hist)-1]
	fmt.Printf("%s: %d bodies on %d virtual processors, %d steps\n", cl.Name, *n, *procs, *steps)
	fmt.Printf("  energy %.6f -> %.6f (drift %.2e)\n", e0.Total(), eN.Total(),
		abs(eN.Total()-e0.Total())/abs(e0.Total()))
	fmt.Printf("  interactions %.3g, fetches %d, imbalance %.2f\n",
		float64(res.Interactions), res.Fetches, res.MaxImbalance)
	fmt.Printf("  modeled: %.2f s virtual, %.2f Gflop/s aggregate, %.1f Mflops/proc\n",
		res.ElapsedVirtual, res.Gflops, res.MflopsPerProc)
	fmt.Printf("  comm: %d messages, %.2f MB\n", res.Comm.Messages, float64(res.Comm.Bytes)/1e6)

	if *ckpt != "" {
		data := make([]float64, 0, 7*len(res.Bodies))
		for _, b := range res.Bodies {
			data = append(data, b.Pos[0], b.Pos[1], b.Pos[2], b.Vel[0], b.Vel[1], b.Vel[2], b.Mass)
		}
		path, err := pario.WriteStripe(*ckpt, "snapshot", 0, data)
		if err != nil {
			log.Fatalf("checkpoint: %v", err)
		}
		fmt.Printf("  checkpoint: %s (%d bodies)\n", path, len(res.Bodies))
	}

	// Stop sampling (taking the final sample) before the report is built so
	// the ANALYSIS.json live block carries the end state. Idempotent with
	// the deferred Stop.
	sampler.Stop()

	artifact := ""
	if *report && res.Interrupted {
		// The event log stops at the interrupt; a trace analysis over a
		// partial run would mislead, and a partial result must never enter
		// the ledger under the full configuration's digest.
		fmt.Fprintln(os.Stderr, "spacesim: interrupted — skipping the analysis report")
	} else if *report {
		rep, err := analysis.Analyze(o, cl, analysis.Options{})
		if err != nil {
			log.Fatalf("report: %v", err)
		}
		rep.Faults = faultRep
		rep.Live = sampler.Dump()
		if rep.Provenance != nil {
			rep.Provenance.ConfigDigest = lcfg.Digest()
		}
		fmt.Println()
		fmt.Print(rep.Render())
		if *aOut != "" {
			if err := rep.WriteJSON(*aOut); err != nil {
				log.Fatalf("report: %v", err)
			}
			fmt.Printf("  analysis: %s\n", *aOut)
			artifact = *aOut
		}
	}

	if *metrics != "" {
		if err := o.WriteMetricsFile(*metrics); err != nil {
			log.Fatalf("metrics: %v", err)
		}
		fmt.Printf("  metrics: %s\n", *metrics)
	}
	if *trace != "" {
		if err := o.WriteTraceFile(*trace); err != nil {
			log.Fatalf("trace: %v", err)
		}
		fmt.Printf("  trace: %s (chrome://tracing or https://ui.perfetto.dev)\n", *trace)
	}

	if res.Interrupted {
		os.Exit(1)
	}
	appendRun(*ledgerD, lcfg, artifact, res)
}

// appendRun records the finished run in the ledger: headline metrics from
// the result (and, when written, the ANALYSIS.json artifact), peak RSS, and
// the content-addressed artifact blob. Best-effort — a failed append warns
// and never fails the run.
func appendRun(dir string, cfg ledger.Config, artifactPath string, res core.Result) {
	if dir == "" {
		return
	}
	st, err := ledger.Open(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ledger:", err)
		return
	}
	metrics := map[string]float64{
		"makespan_sec":  res.ElapsedVirtual,
		"gflops":        res.Gflops,
		"max_imbalance": res.MaxImbalance,
	}
	var artifacts map[string][]byte
	if artifactPath != "" {
		if data, err := os.ReadFile(artifactPath); err == nil {
			artifacts = map[string][]byte{filepath.Base(artifactPath): data}
			for k, v := range ledger.ExtractMetrics(data) {
				metrics[k] = v
			}
		}
	}
	if rss := ledger.PeakRSSBytes(); rss > 0 {
		metrics["peak_rss_bytes"] = float64(rss)
	}
	rec := &ledger.Record{Config: cfg, Build: ledger.Prov(), Metrics: metrics}
	id, err := st.Append(rec, artifacts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ledger:", err)
		return
	}
	fmt.Printf("  ledger: run %s (config %s) in %s\n", id, rec.ConfigDigest[:12], st.Dir)
}

// runWithFaults executes the fault-injected path: an uninterrupted probe
// run measures the virtual horizon (and, with verify, the reference state),
// then a schedule drawn from the paper's hazard rates is injected and the
// run recovers through checkpoint rollback.
func runWithFaults(cfg core.RunConfig, ics []core.Body, seed int64, accel float64, every int, verify bool, newObs func() *obs.Obs) (core.Result, *analysis.FaultSummary) {
	probeCfg := cfg
	probeCfg.Cluster.Obs = obs.New(false)
	base := core.Run(probeCfg, ics)
	if base.Err != nil {
		log.Fatalf("faults: fault-free probe failed: %v", base.Err)
	}

	sched := faults.New(faults.Options{
		Ranks: cfg.Procs, Horizon: base.ElapsedVirtual, Seed: seed, Accel: accel,
	})
	fmt.Printf("fault schedule: seed %d, accel %g, horizon %.3fs — %d crash, %d degrade, %d flap, %d disk\n",
		seed, accel, base.ElapsedVirtual,
		sched.Count(faults.RankCrash), sched.Count(faults.LinkDegrade),
		sched.Count(faults.PortFlap), sched.Count(faults.DiskCorrupt))
	for _, f := range sched.Faults {
		fmt.Printf("  %s\n", f)
	}

	dir, err := os.MkdirTemp("", "spacesim-ck-")
	if err != nil {
		log.Fatalf("faults: %v", err)
	}
	defer os.RemoveAll(dir)
	cfg.Checkpoint = &core.CheckpointConfig{Dir: dir, Every: every}
	res, st, err := core.RunRecovered(core.RecoveryConfig{
		RunConfig: cfg,
		Injector:  faults.NewInjector(sched),
		NewObs:    func(int) *obs.Obs { return newObs() },
	}, ics)
	if err != nil {
		log.Fatalf("faults: recovery failed: %v", err)
	}

	fs := &analysis.FaultSummary{
		Attempts:         st.Attempts,
		Crashes:          st.Crashes,
		CrashRanks:       st.CrashRanks,
		CrashTimesSec:    st.CrashTimes,
		RestoredSteps:    st.RestoredSteps,
		ReplayedSteps:    st.ReplayedSteps,
		LostVirtualSec:   st.LostVirtualSec,
		TotalVirtualSec:  st.TotalVirtualSec,
		DegradedLinkSec:  st.DegradedLinkSec,
		FlappingPortSec:  st.FlappingPortSec,
		CheckpointWrites: st.CheckpointWrites,
		CheckpointSec:    st.CheckpointSec,
		CorruptStripes:   st.CorruptStripes,
	}
	fmt.Printf("recovery: %d crash(es), %d attempt(s), rollbacks %v, %d steps replayed, %.3fs virtual lost\n",
		st.Crashes, st.Attempts, st.RestoredSteps, st.ReplayedSteps, st.LostVirtualSec)

	if verify {
		if st.Crashes == 0 {
			log.Fatalf("verify-recovery: no crash fired within the %.3fs horizon — raise -fault-accel or change -faults seed", base.ElapsedVirtual)
		}
		ok := bitIdentical(base, res)
		fs.RecoveredBitIdentical = &ok
		if !ok {
			log.Fatal("verify-recovery: recovered state differs from the uninterrupted twin")
		}
		fmt.Println("verify-recovery: recovered state bit-identical to the uninterrupted twin")
	}
	return res, fs
}

// bitIdentical compares the gathered bodies and energy histories of two
// runs exactly.
func bitIdentical(a, b core.Result) bool {
	if len(a.Bodies) != len(b.Bodies) || len(a.EnergyHistory) != len(b.EnergyHistory) {
		return false
	}
	for i := range a.Bodies {
		x, y := a.Bodies[i], b.Bodies[i]
		if x.ID != y.ID || x.Pos != y.Pos || x.Vel != y.Vel || x.Mass != y.Mass {
			return false
		}
	}
	for i := range a.EnergyHistory {
		if a.EnergyHistory[i] != b.EnergyHistory[i] {
			return false
		}
	}
	return true
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
