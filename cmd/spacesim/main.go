// Command spacesim runs a parallel N-body simulation with the hashed
// oct-tree code on the modeled Space Simulator cluster and reports
// conservation diagnostics and modeled performance.
//
// Usage:
//
//	spacesim [-n 4000] [-procs 16] [-steps 10] [-dt 0.005] [-theta 0.7]
//	         [-ic plummer|coldsphere] [-karp] [-checkpoint dir]
//	         [-trace trace.json] [-metrics metrics.json]
//	         [-report] [-analysis ANALYSIS.json]
//	         [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"runtime"
	"runtime/pprof"

	"spacesim/internal/core"
	"spacesim/internal/machine"
	"spacesim/internal/netsim"
	"spacesim/internal/obs"
	"spacesim/internal/obs/analysis"
	"spacesim/internal/pario"
)

func main() {
	var (
		n       = flag.Int("n", 4000, "number of bodies")
		procs   = flag.Int("procs", 16, "virtual processors (max 294)")
		steps   = flag.Int("steps", 10, "leapfrog steps")
		dt      = flag.Float64("dt", 0.005, "timestep (N-body units)")
		theta   = flag.Float64("theta", 0.7, "multipole acceptance parameter")
		eps     = flag.Float64("eps", 0.01, "Plummer softening")
		ic      = flag.String("ic", "plummer", "initial condition: plummer|coldsphere")
		karp    = flag.Bool("karp", false, "use the Karp reciprocal sqrt kernel")
		seed    = flag.Int64("seed", 1, "RNG seed")
		ckpt    = flag.String("checkpoint", "", "directory for a final striped checkpoint")
		trace   = flag.String("trace", "", "write a Chrome trace_event JSON file of the run")
		metrics = flag.String("metrics", "", "write a metrics snapshot JSON file of the run")
		report  = flag.Bool("report", false, "retain structured telemetry and print the trace analysis")
		aOut    = flag.String("analysis", "ANALYSIS.json", "analysis report path (with -report)")
		cpuProf = flag.String("cpuprofile", "", "write a host-side CPU profile to this file")
		memProf = flag.String("memprofile", "", "write a host-side heap profile to this file on exit")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			log.Fatalf("cpuprofile: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatalf("cpuprofile: %v", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				log.Fatalf("memprofile: %v", err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Fatalf("memprofile: %v", err)
			}
		}()
	}

	rng := rand.New(rand.NewSource(*seed))
	var ics []core.Body
	switch *ic {
	case "plummer":
		ics = core.PlummerSphere(rng, *n, 1.0)
	case "coldsphere":
		ics = core.ColdSphere(rng, *n, 1.0)
	default:
		log.Fatalf("unknown initial condition %q", *ic)
	}

	o := obs.New(*trace != "")
	if *report {
		o.EnableEvents()
	}
	cl := machine.SpaceSimulator(netsim.ProfileLAM).WithObs(o)
	res := core.Run(core.RunConfig{
		Cluster: cl, Procs: *procs, Steps: *steps,
		Opt: core.Options{
			Theta: *theta, Eps: *eps, DT: *dt, UseKarp: *karp,
		},
		GatherBodies: *ckpt != "",
	}, ics)

	e0 := res.EnergyHistory[0]
	eN := res.EnergyHistory[len(res.EnergyHistory)-1]
	fmt.Printf("%s: %d bodies on %d virtual processors, %d steps\n", cl.Name, *n, *procs, *steps)
	fmt.Printf("  energy %.6f -> %.6f (drift %.2e)\n", e0.Total(), eN.Total(),
		abs(eN.Total()-e0.Total())/abs(e0.Total()))
	fmt.Printf("  interactions %.3g, fetches %d, imbalance %.2f\n",
		float64(res.Interactions), res.Fetches, res.MaxImbalance)
	fmt.Printf("  modeled: %.2f s virtual, %.2f Gflop/s aggregate, %.1f Mflops/proc\n",
		res.ElapsedVirtual, res.Gflops, res.MflopsPerProc)
	fmt.Printf("  comm: %d messages, %.2f MB\n", res.Comm.Messages, float64(res.Comm.Bytes)/1e6)

	if *ckpt != "" {
		data := make([]float64, 0, 7*len(res.Bodies))
		for _, b := range res.Bodies {
			data = append(data, b.Pos[0], b.Pos[1], b.Pos[2], b.Vel[0], b.Vel[1], b.Vel[2], b.Mass)
		}
		path, err := pario.WriteStripe(*ckpt, "snapshot", 0, data)
		if err != nil {
			log.Fatalf("checkpoint: %v", err)
		}
		fmt.Printf("  checkpoint: %s (%d bodies)\n", path, len(res.Bodies))
	}

	if *report {
		rep, err := analysis.Analyze(o, cl, analysis.Options{})
		if err != nil {
			log.Fatalf("report: %v", err)
		}
		fmt.Println()
		fmt.Print(rep.Render())
		if *aOut != "" {
			if err := rep.WriteJSON(*aOut); err != nil {
				log.Fatalf("report: %v", err)
			}
			fmt.Printf("  analysis: %s\n", *aOut)
		}
	}

	if *metrics != "" {
		if err := o.WriteMetricsFile(*metrics); err != nil {
			log.Fatalf("metrics: %v", err)
		}
		fmt.Printf("  metrics: %s\n", *metrics)
	}
	if *trace != "" {
		if err := o.WriteTraceFile(*trace); err != nil {
			log.Fatalf("trace: %v", err)
		}
		fmt.Printf("  trace: %s (chrome://tracing or https://ui.perfetto.dev)\n", *trace)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
