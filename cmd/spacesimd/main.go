// Command spacesimd is the simulation job server: a crash-safe daemon that
// accepts per-job configurations over HTTP, persists them to a durable
// journal, executes them on a bounded worker pool, and caches results
// content-addressed by configuration digest.
//
// Usage:
//
//	spacesimd [-addr 127.0.0.1:8080] [-state .spacesimd] [-workers 2]
//	          [-max-queue 64] [-max-retries 2] [-retry-base 1s]
//	          [-min-deadline 60s] [-deadline-factor 4]
//	          [-sample-every 100ms] [-ledger .ssruns]
//
// Submit a job:
//
//	curl -s -X POST localhost:8080/jobs -d '{"scenario":"plummer","n":4000,
//	  "ranks":16,"steps":10,"checkpoint_every":2,"seed":1}'
//
// then poll /jobs/{id} (live progress and ETA while running) and fetch
// /jobs/{id}/artifact when done. Identical configurations return the cached
// artifact without re-simulating; "no_cache":true forces a recompute.
//
// The daemon is built to be killed. kill -9 it mid-job and restart: the
// journal replays, the job requeues, and it resumes from its newest intact
// checkpoint — the finished artifact is bit-identical to an uninterrupted
// run. SIGTERM/SIGINT drains gracefully instead: running jobs checkpoint at
// their next step boundary and requeue, then the process exits 0. A second
// signal force-quits.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"spacesim/internal/obs/ledger"
	"spacesim/internal/serve"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)")
		state    = flag.String("state", ".spacesimd", "state directory: job journal, result cache, checkpoints")
		workers  = flag.Int("workers", 2, "concurrent job executions")
		maxQueue = flag.Int("max-queue", 64, "admitted-but-unfinished job bound (beyond it: 429 + Retry-After)")
		retries  = flag.Int("max-retries", 2, "retry budget per job (0 = fail on the first bad attempt)")
		rBase    = flag.Duration("retry-base", time.Second, "retry backoff base (doubles per retry, plus deterministic jitter)")
		rMax     = flag.Duration("retry-max", 30*time.Second, "retry backoff cap")
		minDL    = flag.Duration("min-deadline", 60*time.Second, "watchdog deadline floor per attempt")
		dlFactor = flag.Float64("deadline-factor", 4, "watchdog deadline as a multiple of the job's own first ETA estimate")
		sampleE  = flag.Duration("sample-every", 100*time.Millisecond, "live sampler cadence (daemon and per-job)")
		ledgerD  = flag.String("ledger", ledger.DefaultDir, "run-ledger directory (empty disables ledger records and /runs)")
	)
	flag.Parse()

	cfg := serve.Config{
		Dir: *state, Workers: *workers, MaxQueue: *maxQueue,
		MaxRetries: *retries, RetryBase: *rBase, RetryMax: *rMax,
		MinDeadline: *minDL, DeadlineFactor: *dlFactor,
		SampleEvery: *sampleE,
	}
	if *ledgerD != "" {
		st, err := ledger.Open(*ledgerD)
		if err != nil {
			log.Fatalf("ledger: %v", err)
		}
		cfg.Ledger = st
	}
	s, err := serve.New(cfg)
	if err != nil {
		log.Fatalf("spacesimd: %v", err)
	}

	srv := &http.Server{Addr: *addr, Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	fmt.Printf("spacesimd: serving on http://%s/ (state %s, %d workers)\n", *addr, *state, *workers)

	select {
	case err := <-errc:
		log.Fatalf("spacesimd: http: %v", err)
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "spacesimd: %v: draining (checkpointing and requeuing running jobs; send again to force quit)\n", sig)
	}
	go func() {
		<-sigc
		fmt.Fprintln(os.Stderr, "spacesimd: second signal: force quit")
		os.Exit(1)
	}()
	s.Drain()
	srv.Close()
	fmt.Fprintln(os.Stderr, "spacesimd: drained cleanly")
}
