package main

import (
	"strings"
	"testing"

	"spacesim/internal/obs/live"
)

// validDump builds a minimal sound live block; each test case mutates one
// aspect and asserts the precise diagnostic liveErr produces.
func validDump() *live.Dump {
	return &live.Dump{
		SchemaVersion:  1,
		SampleEverySec: 0.25,
		Samples:        3,
		Capacity:       256,
		HostSec:        []float64{0.1, 0.2, 0.3},
		VirtualSec:     []float64{0, 1, 2},
		Series: []live.SeriesDump{
			{Name: "progress.fraction", Values: []float64{0.1, 0.5, 1}},
		},
		Progress: live.ProgressSnapshot{StepFraction: 1, StepsDone: 2, StepsTotal: 2, ETASec: -1},
	}
}

func TestLiveErrValid(t *testing.T) {
	if err := liveErr(validDump()); err != nil {
		t.Fatalf("valid dump rejected: %v", err)
	}
}

func TestLiveErrEdgeCases(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(d *live.Dump)
		wantErr string
	}{
		{
			// A sampler that never ticked must not pass as a live block.
			name:    "zero-sample dump",
			mutate:  func(d *live.Dump) { d.Samples = 0 },
			wantErr: "live: 0 samples, want > 0",
		},
		{
			// One retained sample is legal — the monotonicity loops are
			// vacuous but the lockstep rule still binds every series.
			name: "single-sample series out of lockstep",
			mutate: func(d *live.Dump) {
				d.Samples = 1
				d.HostSec = []float64{0.1}
				d.VirtualSec = []float64{0}
				d.Series = []live.SeriesDump{{Name: "mp.msg.count", Values: []float64{1, 2}}}
			},
			wantErr: "live: series mp.msg.count has 2 samples, time columns have 1",
		},
		{
			name:    "missing virtual time column",
			mutate:  func(d *live.Dump) { d.VirtualSec = nil },
			wantErr: "live: virtual_sec has 0 samples, host_sec has 3",
		},
		{
			name:    "missing host time column",
			mutate:  func(d *live.Dump) { d.HostSec = nil },
			wantErr: "live: 0 retained samples outside (0, capacity 256]",
		},
		{
			name:    "retained window exceeds capacity",
			mutate:  func(d *live.Dump) { d.Capacity = 2 },
			wantErr: "live: 3 retained samples outside (0, capacity 2]",
		},
		{
			name:    "host clock runs backwards",
			mutate:  func(d *live.Dump) { d.HostSec[2] = 0.15 },
			wantErr: "live: host_sec not monotone at sample 2 (0.15 < 0.2)",
		},
		{
			name:    "virtual clock runs backwards",
			mutate:  func(d *live.Dump) { d.VirtualSec[1] = -1 },
			wantErr: "live: virtual_sec not monotone at sample 1 (-1 < 0)",
		},
		{
			name:    "anonymous series",
			mutate:  func(d *live.Dump) { d.Series[0].Name = "" },
			wantErr: "live: series with empty name",
		},
		{
			name:    "step fraction above one",
			mutate:  func(d *live.Dump) { d.Progress.StepFraction = 1.5 },
			wantErr: "live: step_fraction 1.5 outside [0, 1]",
		},
		{
			name:    "negative eta sentinel",
			mutate:  func(d *live.Dump) { d.Progress.ETASec = -0.5 },
			wantErr: "live: eta_sec -0.5, want -1 (unknown) or >= 0",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := validDump()
			tc.mutate(d)
			err := liveErr(d)
			if err == nil {
				t.Fatalf("mutated dump accepted, want error %q", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q, want it to contain %q", err, tc.wantErr)
			}
		})
	}
}
