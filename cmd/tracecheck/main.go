// Command tracecheck validates the observability artifacts the simulator
// emits: a Chrome trace_event JSON file (-trace), a metrics snapshot JSON
// file (-metrics), a trace-analysis report (-analysis), a treecode
// benchmark record (-bench), a checkpoint-cadence sweep (-faultsweep),
// and/or a run-ledger directory (-ledger). It exits nonzero with a
// diagnostic when a file does not satisfy the expected schema, and prints a
// one-line summary when it does. Used by `make ci` to smoke-test the
// observability pipeline.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"

	"spacesim/internal/obs"
	"spacesim/internal/obs/analysis"
	"spacesim/internal/obs/ledger"
	"spacesim/internal/obs/live"
)

func main() {
	trace := flag.String("trace", "", "Chrome trace_event JSON file to validate")
	metrics := flag.String("metrics", "", "metrics snapshot JSON file to validate")
	analysisPath := flag.String("analysis", "", "trace-analysis report (ANALYSIS.json) to validate")
	bench := flag.String("bench", "", "treecode benchmark record (BENCH_treecode.json) to validate")
	sweep := flag.String("faultsweep", "", "checkpoint-cadence sweep (FAULTSWEEP.json) to validate")
	ledgerDir := flag.String("ledger", "", "run-ledger directory (.ssruns) to validate")
	flag.Parse()
	if *trace == "" && *metrics == "" && *analysisPath == "" && *bench == "" && *sweep == "" && *ledgerDir == "" {
		fmt.Fprintln(os.Stderr, "usage: tracecheck [-trace FILE] [-metrics FILE] [-analysis FILE] [-bench FILE] [-faultsweep FILE] [-ledger DIR]")
		os.Exit(2)
	}
	ok := true
	if *trace != "" {
		ok = checkTrace(*trace) && ok
	}
	if *metrics != "" {
		ok = checkMetrics(*metrics) && ok
	}
	if *analysisPath != "" {
		ok = checkAnalysis(*analysisPath) && ok
	}
	if *bench != "" {
		ok = checkBench(*bench) && ok
	}
	if *sweep != "" {
		ok = checkFaultsweep(*sweep) && ok
	}
	if *ledgerDir != "" {
		ok = checkLedger(*ledgerDir) && ok
	}
	if !ok {
		os.Exit(1)
	}
}

func fail(path, format string, args ...any) bool {
	fmt.Fprintf(os.Stderr, "tracecheck: %s: %s\n", path, fmt.Sprintf(format, args...))
	return false
}

// traceEvent mirrors the subset of the trace_event format the tracer emits.
type traceEvent struct {
	Name  string  `json:"name"`
	Cat   string  `json:"cat"`
	Ph    string  `json:"ph"`
	Ts    float64 `json:"ts"`
	Dur   float64 `json:"dur"`
	Pid   int     `json:"pid"`
	Tid   int     `json:"tid"`
	Scope string  `json:"id,omitempty"`
}

func checkTrace(path string) bool {
	data, err := os.ReadFile(path)
	if err != nil {
		return fail(path, "%v", err)
	}
	var doc struct {
		TraceEvents     []traceEvent `json:"traceEvents"`
		DisplayTimeUnit string       `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return fail(path, "not valid trace JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		return fail(path, "no traceEvents")
	}
	spans, meta := 0, 0
	pids := map[int]bool{}
	for i, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "X":
			spans++
			if ev.Dur < 0 {
				return fail(path, "event %d (%s): negative duration %g", i, ev.Name, ev.Dur)
			}
		case "M":
			meta++
		case "b", "e":
			// async nestable pair; names checked below like any event
		default:
			return fail(path, "event %d: unexpected phase %q", i, ev.Ph)
		}
		if ev.Name == "" {
			return fail(path, "event %d: empty name", i)
		}
		if ev.Ts < 0 {
			return fail(path, "event %d (%s): negative timestamp %g", i, ev.Name, ev.Ts)
		}
		pids[ev.Pid] = true
	}
	if spans == 0 {
		return fail(path, "no complete (ph=X) span events")
	}
	if !pids[obs.PidRanks] {
		return fail(path, "no events on the rank pid (%d)", obs.PidRanks)
	}
	fmt.Printf("tracecheck: %s ok: %d events (%d spans, %d metadata) across %d pids\n",
		path, len(doc.TraceEvents), spans, meta, len(pids))
	return true
}

func checkMetrics(path string) bool {
	data, err := os.ReadFile(path)
	if err != nil {
		return fail(path, "%v", err)
	}
	var snap obs.MetricsSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return fail(path, "not valid metrics JSON: %v", err)
	}
	if snap.SchemaVersion < 1 {
		return fail(path, "schema_version %d < 1", snap.SchemaVersion)
	}
	if len(snap.Counters) == 0 {
		return fail(path, "no counters")
	}
	if len(snap.Ranks) == 0 {
		return fail(path, "no per-rank breakdown")
	}
	for _, rm := range snap.Ranks {
		if rm.Clock < 0 || rm.ComputeSec < 0 || rm.WaitSec < 0 {
			return fail(path, "rank %d: negative time in breakdown", rm.Rank)
		}
		if rm.ComputeSec+rm.WaitSec > rm.Clock*(1+1e-9)+1e-9 {
			return fail(path, "rank %d: compute+wait %.6g exceeds clock %.6g",
				rm.Rank, rm.ComputeSec+rm.WaitSec, rm.Clock)
		}
	}
	for name, h := range snap.Histograms {
		if !histogramSane(h) {
			return fail(path, "histogram %s: inconsistent summary %+v", name, h)
		}
	}
	fmt.Printf("tracecheck: %s ok: schema v%d, %d counters, %d gauges, %d histograms, %d ranks\n",
		path, snap.SchemaVersion, len(snap.Counters), len(snap.Gauges), len(snap.Histograms), len(snap.Ranks))
	return true
}

// histogramSane checks the internal ordering of one histogram summary:
// nonnegative count and, when populated, min <= p50 <= p95 <= p99 <= max.
func histogramSane(h obs.HistogramSnapshot) bool {
	if h.Count < 0 {
		return false
	}
	if h.Count == 0 {
		return true
	}
	return h.Min <= h.P50 && h.P50 <= h.P95 && h.P95 <= h.P99 && h.P99 <= h.Max
}

// checkAnalysis validates an ANALYSIS.json report: schema version, a
// positive makespan fully accounted for by the critical path, nonnegative
// category attribution, consistent phase statistics, and sane utilization.
func checkAnalysis(path string) bool {
	rep, err := analysis.ReadFile(path)
	if err != nil {
		return fail(path, "%v", err)
	}
	if rep.SchemaVersion < 1 {
		return fail(path, "schema_version %d < 1", rep.SchemaVersion)
	}
	if rep.Ranks <= 0 {
		return fail(path, "ranks = %d", rep.Ranks)
	}
	if rep.MakespanSec <= 0 {
		return fail(path, "makespan %g, want > 0", rep.MakespanSec)
	}
	if rep.ParallelEfficiency < 0 || rep.ParallelEfficiency > 1+1e-9 {
		return fail(path, "parallel efficiency %g outside [0, 1]", rep.ParallelEfficiency)
	}
	cp := rep.CriticalPath
	if d := math.Abs(cp.TotalSec - rep.MakespanSec); d > 1e-6*rep.MakespanSec {
		return fail(path, "critical path %g does not equal makespan %g", cp.TotalSec, rep.MakespanSec)
	}
	var catSum float64
	for cat, v := range cp.ByCategory {
		if v < 0 {
			return fail(path, "critical path category %q negative: %g", cat, v)
		}
		catSum += v
	}
	if d := math.Abs(catSum - cp.TotalSec); d > 1e-6*cp.TotalSec {
		return fail(path, "critical path categories sum to %g, want %g", catSum, cp.TotalSec)
	}
	for _, p := range rep.Phases {
		if p.MeanSec < 0 || p.MaxSec < p.MeanSec-1e-9 {
			return fail(path, "phase %s: mean %g max %g", p.Name, p.MeanSec, p.MaxSec)
		}
		if p.IdleFraction < 0 || p.IdleFraction > 1+1e-9 {
			return fail(path, "phase %s: idle fraction %g", p.Name, p.IdleFraction)
		}
	}
	for name, h := range rep.Histograms {
		if !histogramSane(h) {
			return fail(path, "histogram %s: inconsistent summary %+v", name, h)
		}
	}
	for _, l := range rep.Links {
		if l.Bytes < 0 || l.MeanUtil < 0 || l.PeakUtil < l.MeanUtil-1e-9 {
			return fail(path, "link %s: bytes %d mean %g peak %g", l.Name, l.Bytes, l.MeanUtil, l.PeakUtil)
		}
		if l.BusyFraction < 0 || l.BusyFraction > 1 {
			return fail(path, "link %s: busy fraction %g", l.Name, l.BusyFraction)
		}
	}
	if fr := rep.Faults; fr != nil {
		if fr.Attempts < 1 {
			return fail(path, "faults: attempts %d < 1", fr.Attempts)
		}
		if fr.Crashes != len(fr.CrashRanks) || fr.Crashes != len(fr.CrashTimesSec) {
			return fail(path, "faults: %d crashes but %d ranks, %d times",
				fr.Crashes, len(fr.CrashRanks), len(fr.CrashTimesSec))
		}
		if fr.Attempts != fr.Crashes+1 {
			return fail(path, "faults: %d attempts inconsistent with %d crashes", fr.Attempts, fr.Crashes)
		}
		if len(fr.RestoredSteps) > fr.Crashes {
			return fail(path, "faults: %d rollbacks exceed %d crashes", len(fr.RestoredSteps), fr.Crashes)
		}
		for i, t := range fr.CrashTimesSec {
			if t < 0 {
				return fail(path, "faults: crash %d at negative time %g", i, t)
			}
		}
		if fr.ReplayedSteps < 0 || fr.LostVirtualSec < 0 || fr.TotalVirtualSec < 0 ||
			fr.DegradedLinkSec < 0 || fr.FlappingPortSec < 0 ||
			fr.CheckpointWrites < 0 || fr.CheckpointSec < 0 || fr.CorruptStripes < 0 {
			return fail(path, "faults: negative recovery metric: %+v", fr)
		}
		if fr.RecoveredBitIdentical != nil && !*fr.RecoveredBitIdentical {
			return fail(path, "faults: recovery verification recorded a divergent state")
		}
	}
	if rep.Live != nil && !checkLive(path, rep.Live) {
		return false
	}
	faultsNote := ""
	if rep.Faults != nil {
		faultsNote = fmt.Sprintf(", %d crash(es) recovered", rep.Faults.Crashes)
	}
	if rep.Live != nil {
		faultsNote += fmt.Sprintf(", live block (%d samples, %d series)", rep.Live.Samples, len(rep.Live.Series))
	}
	fmt.Printf("tracecheck: %s ok: schema v%d, %d ranks, makespan %.6gs, %d path segments, %d phases, %d links%s\n",
		path, rep.SchemaVersion, rep.Ranks, rep.MakespanSec, len(cp.Segments), len(rep.Phases), len(rep.Links), faultsNote)
	return true
}

// checkLive validates a live-telemetry block in the artifact at path,
// reporting the first violation liveErr finds.
func checkLive(path string, d *live.Dump) bool {
	if err := liveErr(d); err != nil {
		return fail(path, "%v", err)
	}
	return true
}

// liveErr validates a live-telemetry block (shared by ANALYSIS.json and
// BENCH_treecode.json): the sampler must have ticked, the retained host
// and virtual time columns must be monotone and equally long, every series
// ring must be in lockstep with them, and the final progress view must be
// internally consistent (fraction in [0,1], nonnegative counts, ETA either
// unknown (-1) or nonnegative). Returns nil when the block is sound.
func liveErr(d *live.Dump) error {
	if d.SchemaVersion < 1 {
		return fmt.Errorf("live: schema_version %d < 1", d.SchemaVersion)
	}
	if d.Samples <= 0 {
		return fmt.Errorf("live: %d samples, want > 0", d.Samples)
	}
	if d.SampleEverySec <= 0 {
		return fmt.Errorf("live: sample_every_sec %g, want > 0", d.SampleEverySec)
	}
	if d.Capacity <= 0 {
		return fmt.Errorf("live: capacity %d, want > 0", d.Capacity)
	}
	n := len(d.HostSec)
	if n == 0 || n > d.Capacity {
		return fmt.Errorf("live: %d retained samples outside (0, capacity %d]", n, d.Capacity)
	}
	if len(d.VirtualSec) != n {
		return fmt.Errorf("live: virtual_sec has %d samples, host_sec has %d", len(d.VirtualSec), n)
	}
	for i := 1; i < n; i++ {
		if d.HostSec[i] < d.HostSec[i-1] {
			return fmt.Errorf("live: host_sec not monotone at sample %d (%g < %g)", i, d.HostSec[i], d.HostSec[i-1])
		}
		if d.VirtualSec[i] < d.VirtualSec[i-1] {
			return fmt.Errorf("live: virtual_sec not monotone at sample %d (%g < %g)", i, d.VirtualSec[i], d.VirtualSec[i-1])
		}
	}
	for _, s := range d.Series {
		if s.Name == "" {
			return fmt.Errorf("live: series with empty name")
		}
		if len(s.Values) != n {
			return fmt.Errorf("live: series %s has %d samples, time columns have %d", s.Name, len(s.Values), n)
		}
	}
	p := d.Progress
	if p.StepFraction < 0 || p.StepFraction > 1 {
		return fmt.Errorf("live: step_fraction %g outside [0, 1]", p.StepFraction)
	}
	if p.StepsDone < 0 || p.StepsTotal < 0 || p.VirtualSec < 0 || p.HostSec < 0 {
		return fmt.Errorf("live: negative progress measurement %+v", p)
	}
	if p.Checkpoints < 0 || p.Recoveries < 0 {
		return fmt.Errorf("live: negative checkpoint/recovery counts %+v", p)
	}
	if p.ETASec < 0 && p.ETASec != -1 {
		return fmt.Errorf("live: eta_sec %g, want -1 (unknown) or >= 0", p.ETASec)
	}
	return nil
}

// checkFaultsweep validates FAULTSWEEP.json: the checkpoint-cadence sweep
// must describe its workload, carry at least one cadence entry with sane
// nonnegative cost metrics, and every entry must have recovered to a state
// bit-identical with the fault-free run.
func checkFaultsweep(path string) bool {
	data, err := os.ReadFile(path)
	if err != nil {
		return fail(path, "%v", err)
	}
	var rep struct {
		SchemaVersion      int     `json:"schema_version"`
		Ranks              int     `json:"ranks"`
		Bodies             int     `json:"bodies"`
		Steps              int     `json:"steps"`
		BaselineVirtualSec float64 `json:"baseline_virtual_sec"`
		ExpectedCrashes    float64 `json:"expected_crashes"`
		ScheduledCrashes   int     `json:"scheduled_crashes"`
		Entries            []struct {
			IntervalSteps    int     `json:"interval_steps"`
			IOOverheadSec    float64 `json:"io_overhead_sec"`
			Crashes          int     `json:"crashes"`
			Attempts         int     `json:"attempts"`
			RestoredSteps    []int   `json:"restored_steps"`
			ReplayedSteps    int     `json:"replayed_steps"`
			LostVirtualSec   float64 `json:"lost_virtual_sec"`
			TotalVirtualSec  float64 `json:"total_virtual_sec"`
			CheckpointWrites int     `json:"checkpoint_writes"`
			CorruptStripes   int     `json:"corrupt_stripes"`
			BitIdentical     bool    `json:"bit_identical"`
		} `json:"entries"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		return fail(path, "not valid faultsweep JSON: %v", err)
	}
	if rep.SchemaVersion < 1 {
		return fail(path, "schema_version %d < 1", rep.SchemaVersion)
	}
	if rep.Ranks <= 0 || rep.Bodies <= 0 || rep.Steps <= 0 {
		return fail(path, "missing workload description (ranks=%d, bodies=%d, steps=%d)",
			rep.Ranks, rep.Bodies, rep.Steps)
	}
	if rep.BaselineVirtualSec <= 0 {
		return fail(path, "baseline_virtual_sec %g, want > 0", rep.BaselineVirtualSec)
	}
	if rep.ExpectedCrashes < 0 || rep.ScheduledCrashes < 0 {
		return fail(path, "negative crash counts (expected %g, scheduled %d)",
			rep.ExpectedCrashes, rep.ScheduledCrashes)
	}
	if len(rep.Entries) == 0 {
		return fail(path, "no sweep entries")
	}
	for i, e := range rep.Entries {
		if e.IntervalSteps <= 0 {
			return fail(path, "entry %d: interval_steps %d, want > 0", i, e.IntervalSteps)
		}
		if e.Attempts < 1 || e.Attempts != e.Crashes+1 {
			return fail(path, "entry %d (K=%d): %d attempts inconsistent with %d crashes",
				i, e.IntervalSteps, e.Attempts, e.Crashes)
		}
		if e.Crashes != rep.ScheduledCrashes {
			return fail(path, "entry %d (K=%d): %d crashes fired, schedule holds %d",
				i, e.IntervalSteps, e.Crashes, rep.ScheduledCrashes)
		}
		if len(e.RestoredSteps) > e.Crashes {
			return fail(path, "entry %d (K=%d): %d rollbacks exceed %d crashes",
				i, e.IntervalSteps, len(e.RestoredSteps), e.Crashes)
		}
		for _, s := range e.RestoredSteps {
			if s < 0 || s >= rep.Steps {
				return fail(path, "entry %d (K=%d): rollback step %d outside [0, %d)",
					i, e.IntervalSteps, s, rep.Steps)
			}
		}
		if e.IOOverheadSec < 0 || e.ReplayedSteps < 0 || e.LostVirtualSec < 0 ||
			e.TotalVirtualSec < 0 || e.CheckpointWrites < 0 || e.CorruptStripes < 0 {
			return fail(path, "entry %d (K=%d): negative cost metric: %+v", i, e.IntervalSteps, e)
		}
		if e.TotalVirtualSec < rep.BaselineVirtualSec*(1-1e-9) {
			return fail(path, "entry %d (K=%d): total virtual %g below the fault-free baseline %g",
				i, e.IntervalSteps, e.TotalVirtualSec, rep.BaselineVirtualSec)
		}
		if !e.BitIdentical {
			return fail(path, "entry %d (K=%d): recovery diverged from the fault-free run", i, e.IntervalSteps)
		}
	}
	fmt.Printf("tracecheck: %s ok: schema v%d, %d ranks, %d cadences, %d scheduled crash(es), all bit-identical\n",
		path, rep.SchemaVersion, rep.Ranks, len(rep.Entries), rep.ScheduledCrashes)
	return true
}

// benchPhases mirrors htree.BuildPhases in the bench record.
type benchPhases struct {
	KeySec   float64 `json:"key_sec"`
	SortSec  float64 `json:"sort_sec"`
	BuildSec float64 `json:"build_sec"`
	MergeSec float64 `json:"merge_sec"`
}

func (p benchPhases) sum() float64 { return p.KeySec + p.SortSec + p.BuildSec + p.MergeSec }
func (p benchPhases) nonneg() bool {
	return p.KeySec >= 0 && p.SortSec >= 0 && p.BuildSec >= 0 && p.MergeSec >= 0
}

// checkBench validates BENCH_treecode.json. Records at schema_version >= 3
// with an engine comparison must embed both the metrics snapshot and the
// trace-analysis summary. The schema version is the max over the optional
// blocks present (see the groupReport history): exactly 4 requires the
// treebuild block, exactly 5 the engine-scaling (scale) block, >= 6
// the live-telemetry (live) block, which is validated by checkLive
// wherever it appears, and exactly 8 the kernel-microbenchmark (kernels)
// block. A record may hold only the treebuild, scale, or kernels block
// (written by `ssbench treebuild`/`ssbench scale`/`ssbench kernels`
// without a prior `group` run), in which case the engine-comparison
// requirements do not apply.
func checkBench(path string) bool {
	data, err := os.ReadFile(path)
	if err != nil {
		return fail(path, "%v", err)
	}
	var rep struct {
		SchemaVersion int                  `json:"schema_version"`
		N             int                  `json:"n"`
		Results       []json.RawMessage    `json:"results"`
		Metrics       *obs.MetricsSnapshot `json:"metrics"`
		Analysis      *analysis.Summary    `json:"analysis"`
		Treebuild     *struct {
			N            int     `json:"n"`
			MaxLeaf      int     `json:"max_leaf"`
			SeedSeconds  float64 `json:"seed_seconds"`
			BitIdentical bool    `json:"bit_identical"`
			Entries      []struct {
				Workers       int         `json:"workers"`
				Seconds       float64     `json:"seconds"`
				SpeedupVsSeed float64     `json:"speedup_vs_seed"`
				Phases        benchPhases `json:"phases"`
			} `json:"entries"`
		} `json:"treebuild"`
		Scale *struct {
			Quick         bool `json:"quick"`
			BitIdentical  bool `json:"bit_identical"`
			IdentityRanks int  `json:"identity_ranks"`
			MaxEventRanks int  `json:"max_event_ranks"`
			Entries       []struct {
				Workload     string  `json:"workload"`
				Engine       string  `json:"engine"`
				Ranks        int     `json:"ranks"`
				VirtualSec   float64 `json:"virtual_sec"`
				HostSec      float64 `json:"host_sec"`
				PeakRSSBytes int64   `json:"peak_rss_bytes"`
				Messages     int64   `json:"messages"`
				RanksPerSec  float64 `json:"ranks_per_sec"`
				RanksPerGB   float64 `json:"ranks_per_gb"`
			} `json:"entries"`
		} `json:"scale"`
		Kernels *struct {
			Sinks               int     `json:"sinks"`
			Lengths             []int   `json:"lengths"`
			DefaultBitIdentical bool    `json:"default_bit_identical"`
			RmsAccErrFloat32    float64 `json:"rms_acc_err_float32"`
			Float32ErrBudget    float64 `json:"float32_err_budget"`
			Entries             []struct {
				Kernel           string  `json:"kernel"`
				Variant          string  `json:"variant"`
				Precision        string  `json:"precision"`
				Length           int     `json:"length"`
				Sinks            int     `json:"sinks"`
				NsPerInteraction float64 `json:"ns_per_interaction"`
				InterPerSec      float64 `json:"interactions_per_sec"`
			} `json:"entries"`
		} `json:"kernels"`
		Live       *live.Dump         `json:"live"`
		Provenance *ledger.Provenance `json:"provenance"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		return fail(path, "not valid bench JSON: %v", err)
	}
	if rep.N <= 0 {
		return fail(path, "missing workload description (n=%d)", rep.N)
	}
	if len(rep.Results) == 0 && rep.Treebuild == nil && rep.Scale == nil && rep.Kernels == nil {
		return fail(path, "record holds neither engine results nor a benchmark block")
	}
	if rep.SchemaVersion == 4 && rep.Treebuild == nil {
		return fail(path, "schema v%d record without a treebuild block", rep.SchemaVersion)
	}
	if rep.SchemaVersion == 5 && rep.Scale == nil {
		return fail(path, "schema v%d record without a scale block", rep.SchemaVersion)
	}
	if rep.SchemaVersion == 6 && rep.Live == nil {
		return fail(path, "schema v%d record without a live block", rep.SchemaVersion)
	}
	if rep.SchemaVersion == 8 && rep.Kernels == nil {
		return fail(path, "schema v%d record without a kernels block", rep.SchemaVersion)
	}
	if rep.SchemaVersion >= 7 {
		if rep.Provenance == nil {
			return fail(path, "schema v%d record without a provenance block", rep.SchemaVersion)
		}
		if rep.Provenance.GoVersion == "" || rep.Provenance.ConfigDigest == "" {
			return fail(path, "provenance block missing go_version or config_digest: %+v", rep.Provenance)
		}
	}
	if rep.Live != nil && !checkLive(path, rep.Live) {
		return false
	}
	if sc := rep.Scale; sc != nil {
		if len(sc.Entries) == 0 {
			return fail(path, "scale: no entries")
		}
		if !sc.BitIdentical {
			return fail(path, "scale: record not bit-identical across engines")
		}
		if sc.IdentityRanks <= 0 {
			return fail(path, "scale: identity_ranks %d, want > 0", sc.IdentityRanks)
		}
		maxEvent := 0
		for i, e := range sc.Entries {
			if e.Engine != "goroutine" && e.Engine != "event" {
				return fail(path, "scale entry %d: unknown engine %q", i, e.Engine)
			}
			if e.Workload == "" || e.Ranks <= 0 {
				return fail(path, "scale entry %d: workload=%q ranks=%d", i, e.Workload, e.Ranks)
			}
			if e.VirtualSec <= 0 || e.HostSec <= 0 || e.PeakRSSBytes <= 0 || e.Messages <= 0 {
				return fail(path, "scale entry %d: non-positive measurement %+v", i, e)
			}
			if d := math.Abs(e.RanksPerSec - float64(e.Ranks)/e.HostSec); d > 1e-6*e.RanksPerSec {
				return fail(path, "scale entry %d: ranks_per_sec %g inconsistent with %d/%g",
					i, e.RanksPerSec, e.Ranks, e.HostSec)
			}
			want := float64(e.Ranks) / (float64(e.PeakRSSBytes) / (1 << 30))
			if d := math.Abs(e.RanksPerGB - want); d > 1e-6*e.RanksPerGB {
				return fail(path, "scale entry %d: ranks_per_gb %g inconsistent with %g",
					i, e.RanksPerGB, want)
			}
			if e.Engine == "event" && e.Ranks > maxEvent {
				maxEvent = e.Ranks
			}
		}
		if sc.MaxEventRanks != maxEvent {
			return fail(path, "scale: max_event_ranks %d, entries say %d", sc.MaxEventRanks, maxEvent)
		}
	}
	if tb := rep.Treebuild; tb != nil {
		if tb.N <= 0 || tb.MaxLeaf <= 0 {
			return fail(path, "treebuild: missing workload description (n=%d, max_leaf=%d)", tb.N, tb.MaxLeaf)
		}
		if tb.SeedSeconds <= 0 {
			return fail(path, "treebuild: seed_seconds %g, want > 0", tb.SeedSeconds)
		}
		if len(tb.Entries) == 0 {
			return fail(path, "treebuild: no entries")
		}
		if !tb.BitIdentical {
			return fail(path, "treebuild: record not bit-identical")
		}
		for i, e := range tb.Entries {
			if e.Workers <= 0 || e.Seconds <= 0 {
				return fail(path, "treebuild entry %d: workers=%d seconds=%g", i, e.Workers, e.Seconds)
			}
			if d := math.Abs(e.SpeedupVsSeed - tb.SeedSeconds/e.Seconds); d > 1e-6*e.SpeedupVsSeed {
				return fail(path, "treebuild entry %d: speedup %g inconsistent with %g/%g",
					i, e.SpeedupVsSeed, tb.SeedSeconds, e.Seconds)
			}
			if !e.Phases.nonneg() {
				return fail(path, "treebuild entry %d: negative phase time %+v", i, e.Phases)
			}
			if s := e.Phases.sum(); s > e.Seconds*(1+1e-9)+1e-6 {
				return fail(path, "treebuild entry %d: phase sum %g exceeds total %g", i, s, e.Seconds)
			}
		}
	}
	if kr := rep.Kernels; kr != nil {
		if kr.Sinks <= 0 || len(kr.Lengths) == 0 {
			return fail(path, "kernels: missing workload description (sinks=%d, %d lengths)", kr.Sinks, len(kr.Lengths))
		}
		if len(kr.Entries) == 0 {
			return fail(path, "kernels: no entries")
		}
		if !kr.DefaultBitIdentical {
			return fail(path, "kernels: default path not bit-identical to the seed evaluation")
		}
		if kr.Float32ErrBudget <= 0 {
			return fail(path, "kernels: float32_err_budget %g, want > 0", kr.Float32ErrBudget)
		}
		if kr.RmsAccErrFloat32 <= 0 || kr.RmsAccErrFloat32 > kr.Float32ErrBudget {
			return fail(path, "kernels: rms_acc_err_float32 %g outside (0, %g]",
				kr.RmsAccErrFloat32, kr.Float32ErrBudget)
		}
		for i, e := range kr.Entries {
			if e.Kernel != "body" && e.Kernel != "cell" {
				return fail(path, "kernels entry %d: unknown kernel %q", i, e.Kernel)
			}
			if e.Variant != "libm" && e.Variant != "karp" {
				return fail(path, "kernels entry %d: unknown variant %q", i, e.Variant)
			}
			if e.Precision != "float64" && e.Precision != "float32" {
				return fail(path, "kernels entry %d: unknown precision %q", i, e.Precision)
			}
			if e.Length <= 0 || e.Sinks <= 0 {
				return fail(path, "kernels entry %d: length=%d sinks=%d", i, e.Length, e.Sinks)
			}
			if e.NsPerInteraction <= 0 {
				return fail(path, "kernels entry %d: ns_per_interaction %g, want > 0", i, e.NsPerInteraction)
			}
			if d := math.Abs(e.InterPerSec - 1e9/e.NsPerInteraction); d > 1e-6*e.InterPerSec {
				return fail(path, "kernels entry %d: interactions_per_sec %g inconsistent with 1e9/%g",
					i, e.InterPerSec, e.NsPerInteraction)
			}
		}
	}
	// The engine-comparison blocks below only bind when the comparison ran.
	if len(rep.Results) > 0 && rep.SchemaVersion >= 2 && rep.Metrics == nil {
		return fail(path, "schema v%d record without embedded metrics", rep.SchemaVersion)
	}
	if len(rep.Results) > 0 && rep.SchemaVersion >= 3 {
		a := rep.Analysis
		if a == nil {
			return fail(path, "schema v%d record without embedded analysis summary", rep.SchemaVersion)
		}
		if a.MakespanSec <= 0 || a.CriticalPathSec <= 0 {
			return fail(path, "analysis summary not populated: %+v", a)
		}
		if d := math.Abs(a.CriticalPathSec - a.MakespanSec); d > 1e-6*a.MakespanSec {
			return fail(path, "analysis critical path %g does not equal makespan %g",
				a.CriticalPathSec, a.MakespanSec)
		}
		var catSum float64
		for cat, v := range a.ByCategory {
			if v < 0 {
				return fail(path, "analysis category %q negative: %g", cat, v)
			}
			catSum += v
		}
		if d := math.Abs(catSum - a.CriticalPathSec); d > 1e-6*a.CriticalPathSec {
			return fail(path, "analysis categories sum to %g, want %g", catSum, a.CriticalPathSec)
		}
	}
	tbNote := ""
	if rep.Treebuild != nil {
		tbNote = fmt.Sprintf(", treebuild %d entries", len(rep.Treebuild.Entries))
	}
	if rep.Scale != nil {
		tbNote += fmt.Sprintf(", scale %d entries (max event world %d ranks)",
			len(rep.Scale.Entries), rep.Scale.MaxEventRanks)
	}
	if rep.Kernels != nil {
		tbNote += fmt.Sprintf(", kernels %d entries (f32 rms %.2g)",
			len(rep.Kernels.Entries), rep.Kernels.RmsAccErrFloat32)
	}
	if rep.Live != nil {
		tbNote += fmt.Sprintf(", live block (%d samples, %d series)", rep.Live.Samples, len(rep.Live.Series))
	}
	if rep.Provenance != nil {
		tbNote += fmt.Sprintf(", provenance (config %.12s)", rep.Provenance.ConfigDigest)
	}
	fmt.Printf("tracecheck: %s ok: schema v%d, n=%d, %d results, metrics=%v, analysis=%v%s\n",
		path, rep.SchemaVersion, rep.N, len(rep.Results), rep.Metrics != nil, rep.Analysis != nil, tbNote)
	return true
}

// checkLedger validates a run-ledger directory: the index must parse, every
// record must carry a schema version, id, config digest, and append time,
// and every artifact blob must exist and hash back to its recorded digest
// (ReadBlob re-verifies content addresses, so silent corruption surfaces
// here).
func checkLedger(dir string) bool {
	if _, err := os.Stat(dir); err != nil {
		return fail(dir, "%v", err)
	}
	st, err := ledger.Open(dir)
	if err != nil {
		return fail(dir, "%v", err)
	}
	recs, err := st.Records()
	if err != nil {
		return fail(dir, "%v", err)
	}
	if len(recs) == 0 {
		return fail(dir, "no run records")
	}
	blobs := 0
	lastT := int64(0)
	for i, r := range recs {
		if r.SchemaVersion < 1 {
			return fail(dir, "record %d: schema_version %d < 1", i, r.SchemaVersion)
		}
		if r.ID == "" {
			return fail(dir, "record %d: empty id", i)
		}
		if r.ConfigDigest == "" {
			return fail(dir, "record %s: empty config digest", r.ID)
		}
		if r.ConfigDigest != r.Config.Digest() {
			return fail(dir, "record %s: config digest %.12s does not match its config (%.12s)",
				r.ID, r.ConfigDigest, r.Config.Digest())
		}
		if r.TimeUnixNS <= 0 {
			return fail(dir, "record %s: append time %d, want > 0", r.ID, r.TimeUnixNS)
		}
		if r.TimeUnixNS < lastT {
			return fail(dir, "record %s: append time not monotone", r.ID)
		}
		lastT = r.TimeUnixNS
		if r.Build.GoVersion == "" || r.Build.Hostname == "" {
			return fail(dir, "record %s: provenance missing go_version or hostname", r.ID)
		}
		for name, digest := range r.Artifacts {
			if _, err := st.ReadBlob(digest); err != nil {
				return fail(dir, "record %s: artifact %s: %v", r.ID, name, err)
			}
			blobs++
		}
	}
	fmt.Printf("tracecheck: %s ok: %d run records, %d artifact blobs verified\n", dir, len(recs), blobs)
	return true
}
