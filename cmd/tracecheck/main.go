// Command tracecheck validates the observability artifacts the simulator
// emits: a Chrome trace_event JSON file (-trace) and/or a metrics snapshot
// JSON file (-metrics). It exits nonzero with a diagnostic when a file does
// not satisfy the expected schema, and prints a one-line summary when it
// does. Used by `make ci` to smoke-test the tracing pipeline.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"spacesim/internal/obs"
)

func main() {
	trace := flag.String("trace", "", "Chrome trace_event JSON file to validate")
	metrics := flag.String("metrics", "", "metrics snapshot JSON file to validate")
	flag.Parse()
	if *trace == "" && *metrics == "" {
		fmt.Fprintln(os.Stderr, "usage: tracecheck [-trace FILE] [-metrics FILE]")
		os.Exit(2)
	}
	ok := true
	if *trace != "" {
		ok = checkTrace(*trace) && ok
	}
	if *metrics != "" {
		ok = checkMetrics(*metrics) && ok
	}
	if !ok {
		os.Exit(1)
	}
}

func fail(path, format string, args ...any) bool {
	fmt.Fprintf(os.Stderr, "tracecheck: %s: %s\n", path, fmt.Sprintf(format, args...))
	return false
}

// traceEvent mirrors the subset of the trace_event format the tracer emits.
type traceEvent struct {
	Name  string  `json:"name"`
	Cat   string  `json:"cat"`
	Ph    string  `json:"ph"`
	Ts    float64 `json:"ts"`
	Dur   float64 `json:"dur"`
	Pid   int     `json:"pid"`
	Tid   int     `json:"tid"`
	Scope string  `json:"id,omitempty"`
}

func checkTrace(path string) bool {
	data, err := os.ReadFile(path)
	if err != nil {
		return fail(path, "%v", err)
	}
	var doc struct {
		TraceEvents     []traceEvent `json:"traceEvents"`
		DisplayTimeUnit string       `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return fail(path, "not valid trace JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		return fail(path, "no traceEvents")
	}
	spans, meta := 0, 0
	pids := map[int]bool{}
	for i, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "X":
			spans++
			if ev.Dur < 0 {
				return fail(path, "event %d (%s): negative duration %g", i, ev.Name, ev.Dur)
			}
		case "M":
			meta++
		case "b", "e":
			// async nestable pair; names checked below like any event
		default:
			return fail(path, "event %d: unexpected phase %q", i, ev.Ph)
		}
		if ev.Name == "" {
			return fail(path, "event %d: empty name", i)
		}
		if ev.Ts < 0 {
			return fail(path, "event %d (%s): negative timestamp %g", i, ev.Name, ev.Ts)
		}
		pids[ev.Pid] = true
	}
	if spans == 0 {
		return fail(path, "no complete (ph=X) span events")
	}
	if !pids[obs.PidRanks] {
		return fail(path, "no events on the rank pid (%d)", obs.PidRanks)
	}
	fmt.Printf("tracecheck: %s ok: %d events (%d spans, %d metadata) across %d pids\n",
		path, len(doc.TraceEvents), spans, meta, len(pids))
	return true
}

func checkMetrics(path string) bool {
	data, err := os.ReadFile(path)
	if err != nil {
		return fail(path, "%v", err)
	}
	var snap obs.MetricsSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return fail(path, "not valid metrics JSON: %v", err)
	}
	if snap.SchemaVersion < 1 {
		return fail(path, "schema_version %d < 1", snap.SchemaVersion)
	}
	if len(snap.Counters) == 0 {
		return fail(path, "no counters")
	}
	if len(snap.Ranks) == 0 {
		return fail(path, "no per-rank breakdown")
	}
	for _, rm := range snap.Ranks {
		if rm.Clock < 0 || rm.ComputeSec < 0 || rm.WaitSec < 0 {
			return fail(path, "rank %d: negative time in breakdown", rm.Rank)
		}
		if rm.ComputeSec+rm.WaitSec > rm.Clock*(1+1e-9)+1e-9 {
			return fail(path, "rank %d: compute+wait %.6g exceeds clock %.6g",
				rm.Rank, rm.ComputeSec+rm.WaitSec, rm.Clock)
		}
	}
	fmt.Printf("tracecheck: %s ok: schema v%d, %d counters, %d gauges, %d ranks\n",
		path, snap.SchemaVersion, len(snap.Counters), len(snap.Gauges), len(snap.Ranks))
	return true
}
