GO ?= go

.PHONY: build test race vet fmt-check bench smoke analyze-smoke fault-smoke treebuild-smoke scale-smoke ci all

all: build test vet fmt-check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector pass over the packages with host concurrency (the grouped
# force engine's worker pool and the rank goroutines).
race:
	$(GO) test -race ./internal/core/... ./internal/gravity/... ./internal/htree/... ./internal/mp/...

vet:
	$(GO) vet ./...

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# Times the per-body vs bucket-grouped treewalk on a 32k Plummer sphere and
# writes the comparison to BENCH_treecode.json.
bench:
	$(GO) run ./cmd/ssbench group -o BENCH_treecode.json

# Generates a small trace + metrics pair from a short distributed run and
# schema-validates both files with the tracecheck tool.
smoke:
	$(GO) run ./cmd/spacesim -n 600 -procs 3 -steps 2 \
		-trace /tmp/spacesim-smoke-trace.json -metrics /tmp/spacesim-smoke-metrics.json
	$(GO) run ./cmd/tracecheck \
		-trace /tmp/spacesim-smoke-trace.json -metrics /tmp/spacesim-smoke-metrics.json

# Trace-analysis smoke: a quick analyze run on the 2-module slice,
# schema-validation of the report, and a self-diff (which must pass — the
# no-op case of the CI perf gate).
analyze-smoke:
	$(GO) run ./cmd/ssbench analyze -quick -analysis-out /tmp/spacesim-smoke-analysis.json
	$(GO) run ./cmd/tracecheck -analysis /tmp/spacesim-smoke-analysis.json
	$(GO) run ./cmd/ssbench diff /tmp/spacesim-smoke-analysis.json /tmp/spacesim-smoke-analysis.json

# Fault-injection smoke: a seeded fault-injected run that must crash at
# least once, recover through checkpoint rollback bit-identically to an
# uninterrupted twin, and emit a fault-annotated analysis report; then a
# quick checkpoint-cadence sweep. Both artifacts are schema-validated.
fault-smoke:
	$(GO) run ./cmd/spacesim -n 600 -procs 4 -steps 6 \
		-faults 11 -fault-accel 3000 -verify-recovery \
		-report -analysis /tmp/spacesim-smoke-faults.json
	$(GO) run ./cmd/ssbench faultsweep -quick -o /tmp/spacesim-smoke-faultsweep.json
	$(GO) run ./cmd/tracecheck -analysis /tmp/spacesim-smoke-faults.json \
		-faultsweep /tmp/spacesim-smoke-faultsweep.json

# Tree-construction smoke: a quick seed-vs-pipeline build benchmark (which
# itself verifies bit-identity across worker counts and exits nonzero on
# divergence), schema-validation of the v4 bench record, and a self-diff
# through the bench arm of the perf gate.
treebuild-smoke:
	$(GO) run ./cmd/ssbench treebuild -quick -o /tmp/spacesim-smoke-treebuild.json
	$(GO) run ./cmd/tracecheck -bench /tmp/spacesim-smoke-treebuild.json
	$(GO) run ./cmd/ssbench diff /tmp/spacesim-smoke-treebuild.json /tmp/spacesim-smoke-treebuild.json

# Engine-scaling smoke: a small rank-count sweep under both the goroutine
# oracle and the discrete-event scheduler (the sweep itself verifies that
# their virtual schedules are bit-identical and exits nonzero on
# divergence), schema-validation of the v5 bench record, and a self-diff
# through the bench arm of the perf gate.
scale-smoke:
	$(GO) run ./cmd/ssbench scale -quick -o /tmp/spacesim-smoke-scale.json
	$(GO) run ./cmd/tracecheck -bench /tmp/spacesim-smoke-scale.json
	$(GO) run ./cmd/ssbench diff /tmp/spacesim-smoke-scale.json /tmp/spacesim-smoke-scale.json

# Full local CI pass: formatting, static checks, tests, race detector, and
# the observability + trace-analysis + fault-injection + tree-build +
# engine-scaling smoke runs.
ci: fmt-check vet test race smoke analyze-smoke fault-smoke treebuild-smoke scale-smoke
