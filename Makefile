GO ?= go

.PHONY: build test race vet fmt-check bench smoke analyze-smoke fault-smoke treebuild-smoke kernels-smoke scale-smoke live-smoke ledger-smoke serve-smoke ci all

all: build test vet fmt-check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector pass over the packages with host concurrency (the grouped
# force engine's worker pool and the rank goroutines).
race:
	$(GO) test -race ./internal/core/... ./internal/gravity/... ./internal/htree/... ./internal/mp/... ./internal/obs/... ./internal/serve/...

vet:
	$(GO) vet ./...

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# Times the per-body vs bucket-grouped treewalk on a 32k Plummer sphere and
# writes the comparison to BENCH_treecode.json.
bench:
	$(GO) run ./cmd/ssbench group -o BENCH_treecode.json

# Generates a small trace + metrics pair from a short distributed run and
# schema-validates both files with the tracecheck tool.
smoke:
	$(GO) run ./cmd/spacesim -n 600 -procs 3 -steps 2 \
		-trace /tmp/spacesim-smoke-trace.json -metrics /tmp/spacesim-smoke-metrics.json
	$(GO) run ./cmd/tracecheck \
		-trace /tmp/spacesim-smoke-trace.json -metrics /tmp/spacesim-smoke-metrics.json

# Trace-analysis smoke: a quick analyze run on the 2-module slice,
# schema-validation of the report, and a self-diff (which must pass — the
# no-op case of the CI perf gate).
analyze-smoke:
	$(GO) run ./cmd/ssbench analyze -quick -analysis-out /tmp/spacesim-smoke-analysis.json
	$(GO) run ./cmd/tracecheck -analysis /tmp/spacesim-smoke-analysis.json
	$(GO) run ./cmd/ssbench diff /tmp/spacesim-smoke-analysis.json /tmp/spacesim-smoke-analysis.json

# Fault-injection smoke: a seeded fault-injected run that must crash at
# least once, recover through checkpoint rollback bit-identically to an
# uninterrupted twin, and emit a fault-annotated analysis report; then a
# quick checkpoint-cadence sweep. Both artifacts are schema-validated.
fault-smoke:
	$(GO) run ./cmd/spacesim -n 600 -procs 4 -steps 6 \
		-faults 11 -fault-accel 3000 -verify-recovery \
		-report -analysis /tmp/spacesim-smoke-faults.json
	$(GO) run ./cmd/ssbench faultsweep -quick -o /tmp/spacesim-smoke-faultsweep.json
	$(GO) run ./cmd/tracecheck -analysis /tmp/spacesim-smoke-faults.json \
		-faultsweep /tmp/spacesim-smoke-faultsweep.json

# Tree-construction smoke: a quick seed-vs-pipeline build benchmark (which
# itself verifies bit-identity across worker counts and exits nonzero on
# divergence), schema-validation of the v4 bench record, and a self-diff
# through the bench arm of the perf gate.
treebuild-smoke:
	$(GO) run ./cmd/ssbench treebuild -quick -o /tmp/spacesim-smoke-treebuild.json
	$(GO) run ./cmd/tracecheck -bench /tmp/spacesim-smoke-treebuild.json
	$(GO) run ./cmd/ssbench diff /tmp/spacesim-smoke-treebuild.json /tmp/spacesim-smoke-treebuild.json

# Kernel smoke: a quick variant x length x precision sweep of the force
# kernels (which itself verifies the default float64 path is bit-identical
# to the scalar reference and that the float32 RMS error stays inside the
# pinned budget, exiting nonzero on either breach), schema-validation of
# the v8 bench record, and a self-diff through the bench arm of the gate.
kernels-smoke:
	$(GO) run ./cmd/ssbench kernels -quick -o /tmp/spacesim-smoke-kernels.json
	$(GO) run ./cmd/tracecheck -bench /tmp/spacesim-smoke-kernels.json
	$(GO) run ./cmd/ssbench diff /tmp/spacesim-smoke-kernels.json /tmp/spacesim-smoke-kernels.json

# Engine-scaling smoke: a small rank-count sweep under both the goroutine
# oracle and the discrete-event scheduler (the sweep itself verifies that
# their virtual schedules are bit-identical and exits nonzero on
# divergence), schema-validation of the v5 bench record, and a self-diff
# through the bench arm of the perf gate.
scale-smoke:
	$(GO) run ./cmd/ssbench scale -quick -o /tmp/spacesim-smoke-scale.json
	$(GO) run ./cmd/tracecheck -bench /tmp/spacesim-smoke-scale.json
	$(GO) run ./cmd/ssbench diff /tmp/spacesim-smoke-scale.json /tmp/spacesim-smoke-scale.json

# Live-telemetry smoke: a run served over -http is probed while in flight
# (Prometheus exposition, the progress/ETA JSON, and a 1-second CPU profile
# from net/http/pprof), then the analysis report and the quick group bench
# record — both carrying the sampler's final series dump — are
# schema-validated, live block included.
live-smoke:
	$(GO) build -o /tmp/spacesim-live ./cmd/spacesim
	/tmp/spacesim-live -n 6000 -procs 4 -steps 7 -http 127.0.0.1:17071 \
		-report -analysis /tmp/spacesim-smoke-live.json >/tmp/spacesim-smoke-live.log & pid=$$!; \
	up=0; for i in $$(seq 1 50); do \
		if curl -sf http://127.0.0.1:17071/progress.json >/dev/null; then up=1; break; fi; sleep 0.1; done; \
	[ $$up = 1 ] || { echo "live-smoke: server never came up"; kill $$pid 2>/dev/null; exit 1; }; \
	curl -sf http://127.0.0.1:17071/metrics | grep -q "# TYPE" || { echo "live-smoke: /metrics"; kill $$pid 2>/dev/null; exit 1; }; \
	curl -sf http://127.0.0.1:17071/progress.json | grep -q '"state"' || { echo "live-smoke: /progress.json"; kill $$pid 2>/dev/null; exit 1; }; \
	curl -sf -o /tmp/spacesim-smoke-live.pprof "http://127.0.0.1:17071/debug/pprof/profile?seconds=1" || { echo "live-smoke: pprof"; kill $$pid 2>/dev/null; exit 1; }; \
	wait $$pid
	$(GO) run ./cmd/tracecheck -analysis /tmp/spacesim-smoke-live.json
	$(GO) run ./cmd/ssbench -quick -http 127.0.0.1:17072 -sample-every 20ms group -o /tmp/spacesim-smoke-live-bench.json
	$(GO) run ./cmd/tracecheck -bench /tmp/spacesim-smoke-live-bench.json

# Run-ledger smoke: two quick grouped-bench runs recorded into a scratch
# ledger must stamp identical config digests (the digest covers only
# deterministic invocation parameters); the trend report must render; the
# baseline arm of the perf gate must pass a self-diff against that history;
# the HTML dashboard must render; and tracecheck must re-verify every run
# record and content-addressed artifact blob.
ledger-smoke:
	$(GO) build -o /tmp/spacesim-smoke-ssbench ./cmd/ssbench
	rm -rf /tmp/spacesim-smoke-ledger
	/tmp/spacesim-smoke-ssbench -quick -ledger /tmp/spacesim-smoke-ledger group -o /tmp/spacesim-smoke-ledger-a.json
	/tmp/spacesim-smoke-ssbench -quick -ledger /tmp/spacesim-smoke-ledger group -o /tmp/spacesim-smoke-ledger-b.json
	@da=$$(grep -o '"config_digest": *"[0-9a-f]*"' /tmp/spacesim-smoke-ledger-a.json); \
	db=$$(grep -o '"config_digest": *"[0-9a-f]*"' /tmp/spacesim-smoke-ledger-b.json); \
	[ -n "$$da" ] && [ "$$da" = "$$db" ] || { echo "ledger-smoke: config digests differ: $$da vs $$db"; exit 1; }; \
	echo "ledger-smoke: identical config digests across both runs"
	/tmp/spacesim-smoke-ssbench trend -ledger /tmp/spacesim-smoke-ledger
	/tmp/spacesim-smoke-ssbench diff -baseline -ledger /tmp/spacesim-smoke-ledger /tmp/spacesim-smoke-ledger-b.json
	/tmp/spacesim-smoke-ssbench report -ledger /tmp/spacesim-smoke-ledger -html /tmp/spacesim-smoke-ledger-runs.html
	$(GO) run ./cmd/tracecheck -ledger /tmp/spacesim-smoke-ledger

# Job-server smoke: the crash-safety story end to end. A spacesimd daemon
# takes a job, is killed -9 mid-run after its first checkpoint, and a
# restarted daemon replays the journal, resumes the job from the checkpoint
# (resumed_step > 0), and finishes it. A duplicate submission must then be a
# cache hit (asserted in the job record and the /metrics counter), a
# no_cache submission must recompute to the identical result digest, and a
# SIGTERM must drain the daemon to a zero exit.
serve-smoke:
	$(GO) build -o /tmp/spacesimd-smoke ./cmd/spacesimd
	rm -rf /tmp/spacesim-smoke-serve
	/tmp/spacesimd-smoke -addr 127.0.0.1:17073 -state /tmp/spacesim-smoke-serve \
		-workers 1 -ledger "" >/tmp/spacesim-smoke-serve.log 2>&1 & pid=$$!; \
	up=0; for i in $$(seq 1 50); do \
		if curl -sf http://127.0.0.1:17073/jobs >/dev/null; then up=1; break; fi; sleep 0.1; done; \
	[ $$up = 1 ] || { echo "serve-smoke: daemon never came up"; kill $$pid 2>/dev/null; exit 1; }; \
	curl -sf -X POST http://127.0.0.1:17073/jobs \
		-d '{"n":6000,"ranks":4,"steps":10,"checkpoint_every":1,"seed":3}' >/dev/null \
		|| { echo "serve-smoke: submit failed"; kill -9 $$pid; exit 1; }; \
	ck=0; for i in $$(seq 1 100); do \
		if ls /tmp/spacesim-smoke-serve/jobs/*/ck-* >/dev/null 2>&1; then ck=1; break; fi; sleep 0.1; done; \
	[ $$ck = 1 ] || { echo "serve-smoke: no checkpoint appeared before the kill"; kill -9 $$pid; exit 1; }; \
	kill -9 $$pid; wait $$pid 2>/dev/null; \
	echo "serve-smoke: daemon killed -9 mid-job after its first checkpoint"
	/tmp/spacesimd-smoke -addr 127.0.0.1:17073 -state /tmp/spacesim-smoke-serve \
		-workers 1 -ledger "" >>/tmp/spacesim-smoke-serve.log 2>&1 & pid=$$!; \
	ok=0; for i in $$(seq 1 300); do \
		if curl -sf http://127.0.0.1:17073/jobs 2>/dev/null | grep -q '"state": "done"'; then ok=1; break; fi; sleep 0.2; done; \
	[ $$ok = 1 ] || { echo "serve-smoke: job never finished after restart"; kill $$pid 2>/dev/null; exit 1; }; \
	curl -sf http://127.0.0.1:17073/jobs | grep -q '"resumed_step": [1-9]' \
		|| { echo "serve-smoke: restarted job recomputed instead of resuming"; kill $$pid; exit 1; }; \
	echo "serve-smoke: journal replayed, job resumed from its checkpoint"; \
	curl -sf -X POST http://127.0.0.1:17073/jobs \
		-d '{"n":6000,"ranks":4,"steps":10,"checkpoint_every":1,"seed":3}' >/dev/null \
		|| { echo "serve-smoke: duplicate submit failed"; kill $$pid; exit 1; }; \
	ok=0; for i in $$(seq 1 100); do \
		if [ "$$(curl -sf http://127.0.0.1:17073/jobs | grep -c '"state": "done"')" -ge 2 ]; then ok=1; break; fi; sleep 0.1; done; \
	[ $$ok = 1 ] || { echo "serve-smoke: duplicate job never finished"; kill $$pid; exit 1; }; \
	curl -sf http://127.0.0.1:17073/jobs | grep -q '"cache_hit": true' \
		|| { echo "serve-smoke: duplicate submission missed the cache"; kill $$pid; exit 1; }; \
	curl -sf http://127.0.0.1:17073/metrics | grep -q '^spacesim_serve_cache_hits 1' \
		|| { echo "serve-smoke: cache_hits counter not 1"; kill $$pid; exit 1; }; \
	echo "serve-smoke: duplicate submission was a cache hit"; \
	curl -sf -X POST http://127.0.0.1:17073/jobs \
		-d '{"n":6000,"ranks":4,"steps":10,"checkpoint_every":1,"seed":3,"no_cache":true}' >/dev/null \
		|| { echo "serve-smoke: no_cache submit failed"; kill $$pid; exit 1; }; \
	ok=0; for i in $$(seq 1 300); do \
		if [ "$$(curl -sf http://127.0.0.1:17073/jobs | grep -c '"state": "done"')" -ge 3 ]; then ok=1; break; fi; sleep 0.2; done; \
	[ $$ok = 1 ] || { echo "serve-smoke: no_cache job never finished"; kill $$pid; exit 1; }; \
	nd=$$(curl -sf http://127.0.0.1:17073/jobs | grep -o '"result_digest": "[0-9a-f]*"' | sort -u | wc -l); \
	[ "$$nd" -eq 1 ] || { echo "serve-smoke: $$nd distinct result digests across resumed/cached/recomputed runs, want 1"; kill $$pid; exit 1; }; \
	echo "serve-smoke: kill-9-resumed, cached, and no_cache-recomputed digests all identical"; \
	kill -TERM $$pid; wait $$pid \
		|| { echo "serve-smoke: drain exited nonzero"; exit 1; }; \
	echo "serve-smoke: SIGTERM drained cleanly (exit 0)"

# Full local CI pass: formatting, static checks, tests, race detector, and
# the observability + trace-analysis + fault-injection + tree-build +
# engine-scaling + live-telemetry + run-ledger + job-server smoke runs.
ci: fmt-check vet test race smoke analyze-smoke fault-smoke treebuild-smoke kernels-smoke scale-smoke live-smoke ledger-smoke serve-smoke
