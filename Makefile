GO ?= go

.PHONY: build test race vet fmt-check bench all

all: build test vet fmt-check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector pass over the packages with host concurrency (the grouped
# force engine's worker pool and the rank goroutines).
race:
	$(GO) test -race ./internal/core/... ./internal/gravity/... ./internal/htree/... ./internal/mp/...

vet:
	$(GO) vet ./...

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# Times the per-body vs bucket-grouped treewalk on a 32k Plummer sphere and
# writes the comparison to BENCH_treecode.json.
bench:
	$(GO) run ./cmd/ssbench group -o BENCH_treecode.json
