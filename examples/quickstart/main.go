// Quickstart: evolve a Plummer sphere with the parallel hashed oct-tree
// code on a few virtual Space Simulator nodes, and watch the conservation
// diagnostics — the smallest complete use of the library.
package main

import (
	"fmt"
	"math/rand"

	"spacesim/internal/core"
	"spacesim/internal/machine"
	"spacesim/internal/netsim"
)

func main() {
	// 1. Initial conditions: a 2000-body Plummer sphere in equilibrium.
	rng := rand.New(rand.NewSource(42))
	bodies := core.PlummerSphere(rng, 2000, 1.0)

	// 2. A cluster model: the 294-node Space Simulator with LAM over
	//    Gigabit Ethernet (Table 1 / Figure 2 of the paper).
	cl := machine.SpaceSimulator(netsim.ProfileLAM)

	// 3. Run 10 leapfrog steps on 8 virtual processors.
	res := core.Run(core.RunConfig{
		Cluster: cl,
		Procs:   8,
		Steps:   10,
		Opt: core.Options{
			Theta: 0.6,  // multipole acceptance criterion
			Eps:   0.02, // Plummer softening
			DT:    0.01, // timestep in N-body units
		},
	}, bodies)

	// 4. Inspect the results.
	fmt.Println("step   kinetic  potential      total   |momentum|")
	for s, e := range res.EnergyHistory {
		fmt.Printf("%4d  %8.5f  %9.5f  %9.5f   %.2e\n",
			s, e.Kinetic, e.Potential, e.Total(), e.Momentum.Norm())
	}
	fmt.Printf("\n%.3g interactions, %d remote fetches, load imbalance %.2f\n",
		float64(res.Interactions), res.Fetches, res.MaxImbalance)
	fmt.Printf("modeled cluster performance: %.2f Gflop/s over %.2f virtual seconds\n",
		res.Gflops, res.ElapsedVirtual)
}
