// Cosmology: the Figure 7 workflow at laptop scale — Gaussian random field
// initial conditions from a CDM power spectrum, Zel'dovich displacements,
// gravitational evolution with the parallel treecode, then halo finding and
// the two-point correlation function of the evolved density field.
package main

import (
	"fmt"

	"spacesim/internal/core"
	"spacesim/internal/cosmo"
	"spacesim/internal/machine"
	"spacesim/internal/netsim"
	"spacesim/internal/vec"
)

func main() {
	c := cosmo.EdS()
	fmt.Println("cosmology:", c)
	fmt.Printf("linear growth D(a): D(0.25)=%.3f D(0.5)=%.3f D(1)=%.3f\n",
		c.GrowthFactor(0.25), c.GrowthFactor(0.5), c.GrowthFactor(1))

	// Zel'dovich initial conditions on a 16^3 lattice in a 32 Mpc/h box.
	opt := cosmo.ICOptions{GridN: 16, BoxMpch: 32, AStart: 0.15, Seed: 9}
	ics := cosmo.GenerateICs(c, opt)
	k, pk := cosmo.MeasurePower(ics.Delta, opt.GridN, opt.BoxMpch, 5)
	fmt.Println("\nrealized power spectrum vs linear theory at a=0.15:")
	d2 := c.GrowthFactor(opt.AStart)
	d2 *= d2
	for i := range k {
		fmt.Printf("  k=%.2f h/Mpc: measured %8.2f  theory %8.2f (Mpc/h)^3\n",
			k[i], pk[i], c.Power(k[i])*d2)
	}

	// Evolve with the treecode on 8 virtual SS processors. (The evolution
	// uses vacuum boundaries — see DESIGN.md for the periodicity caveat —
	// so we read the clustering signal at scales well inside the box.)
	res := core.Run(core.RunConfig{
		Cluster:      machine.SpaceSimulator(netsim.ProfileLAM),
		Procs:        8,
		Steps:        6,
		Opt:          core.Options{Theta: 0.7, Eps: 0.3, DT: 0.6},
		GatherBodies: true,
	}, ics.Bodies)
	fmt.Printf("\nevolved %d particles, %d steps: %.1f modeled Gflop/s\n",
		len(res.Bodies), res.Steps, res.Gflops)

	pos := make([]vec.V3, len(res.Bodies))
	mass := make([]float64, len(res.Bodies))
	for i, b := range res.Bodies {
		pos[i], mass[i] = b.Pos, b.Mass
	}

	link := 0.2 * opt.BoxMpch / float64(opt.GridN)
	halos := cosmo.FoFGroups(pos, mass, link, 10)
	fmt.Printf("\nfriends-of-friends halos (b=0.2): %d groups with >=10 particles\n", len(halos))
	for i, h := range halos {
		if i >= 5 {
			break
		}
		fmt.Printf("  halo %d: %4d particles, center (%.1f %.1f %.1f), Rmax %.2f\n",
			i, h.N, h.Center[0], h.Center[1], h.Center[2], h.Rmax)
	}

	r, xi := cosmo.TwoPointCorrelation(pos, opt.BoxMpch, 0.5, 8, 5)
	fmt.Println("\ntwo-point correlation of the evolved field:")
	for i := range r {
		fmt.Printf("  xi(%4.2f Mpc/h) = %+7.2f\n", r[i], xi[i])
	}
}
