// Supernova: the Figure 8 experiment — collapse of a rotating stellar core
// with SPH + flux-limited neutrino diffusion, printing the bounce and the
// angular-momentum-versus-polar-angle profile (the equator carries orders
// of magnitude more specific angular momentum than the poles).
package main

import (
	"fmt"

	"spacesim/internal/sph"
	"spacesim/internal/units"
)

func main() {
	s := sph.NewRotatingCollapse(sph.RotatingCollapseOptions{
		N:               1500,
		Omega:           0.3,  // solid-body rotation, code units
		PressureDeficit: 0.85, // fraction of hydrostatic support removed
		Seed:            3,
	})

	fmt.Printf("collapsing a rotating core: N=%d, rhoNuc=%.2f (code units)\n",
		s.P.N(), s.Cfg.EOS.RhoNuc)
	fmt.Println("  (1 code mass = 1 Msun, 1 code length = 10^8 cm:",
		"1 code time =", fmt.Sprintf("%.1f ms)", units.SupernovaUnits.TimeSec()*1e3))

	d0 := s.Diag()
	steps, bounced := s.RunUntilBounce(300)
	d1 := s.Diag()

	fmt.Printf("\nbounce=%v after %d steps (t=%.3f)\n", bounced, steps, s.Time)
	fmt.Printf("central density: %.3f -> %.3f (%.0fx); thermal %.4f, neutrino %.4f\n",
		d0.MaxRho, d1.MaxRho, d1.MaxRho/d0.MaxRho, d1.Thermal, d1.Neutrino)
	fmt.Printf("conservation: |P|=%.2e, Lz drift %.2e, energy %.4f -> %.4f\n",
		d1.Momentum.Norm(),
		d1.AngMom[2]-d0.AngMom[2], d0.Total(), d1.Total())

	fmt.Println("\nspecific angular momentum |j_z| by polar angle (Figure 8):")
	prof := s.AngularMomentumByAngle(6)
	for b, j := range prof {
		bar := ""
		for i := 0; i < int(60*j/prof[5]); i++ {
			bar += "#"
		}
		fmt.Printf("  %2d-%2d deg %9.4g %s\n", b*15, (b+1)*15, j, bar)
	}
	fmt.Printf("equator/pole ratio: %.0fx\n", prof[5]/prof[0])
}
