// Clusterdesign: the procurement-side study — bills of materials, power
// budget, price/performance, failure expectations, and the Moore's-law
// comparison between Loki (1996) and the Space Simulator (2002).
package main

import (
	"fmt"

	"spacesim/internal/cluster"
	"spacesim/internal/hpl"
	"spacesim/internal/reliability"
)

func main() {
	ss := cluster.SpaceSimulatorBOM()
	loki := cluster.LokiBOM()
	fmt.Print(ss.Render())
	fmt.Println()
	fmt.Print(loki.Render())

	p := cluster.SpaceSimulatorPower()
	fmt.Printf("\npower: %.1f kW of a %.0f kW budget (max %d nodes)\n",
		p.TotalWatts()/1e3, p.LimitWatts/1e3, p.MaxNodes())

	apr := hpl.ModelGflops(hpl.April2003())
	fmt.Printf("\nLinpack (April 2003 config): %.1f Gflop/s -> $%.3f per Mflop/s\n",
		apr, ss.Total()/(apr*1e3))
	fmt.Println("the first TOP500 machine under $1/Mflop/s")

	fmt.Println("\nexpected component failures (294 nodes, 9 months):")
	_, op := reliability.ExpectedCounts(294, 9)
	for c, v := range op {
		fmt.Printf("  %-18s %.1f\n", c, v)
	}
	sim := reliability.Simulate(reliability.Options{Seed: 7})
	fmt.Printf("SMART would have predicted %.0f%% of this draw's disk failures\n",
		100*sim.SMARTPredictedFraction())

	fmt.Println("\nMoore's-law report (1996 -> 2002, 4 doublings = 16x):")
	comp := cluster.Components(loki, ss, 6)
	fmt.Printf("  disk $/GB:  %.0f -> %.2f  (%.1fx beyond Moore)\n",
		comp.DiskUSDPerGBOld, comp.DiskUSDPerGBNew, comp.DiskVsMoore)
	fmt.Printf("  RAM  $/MB:  %.2f -> %.2f  (%.1fx beyond Moore)\n",
		comp.RAMUSDPerMBOld, comp.RAMUSDPerMBNew, comp.RAMVsMoore)
	for _, r := range cluster.NPBComparisons() {
		fmt.Printf("  NPB %s: %.1fx faster, %.2fx Moore in price/performance\n",
			r.Benchmark, r.Improvement, r.PricePerfVsMoore)
	}
	tm := cluster.TreecodeMoore()
	fmt.Printf("  treecode: %.0fx vs %.0fx predicted — Moore's law, almost exactly\n",
		tm.Improvement, tm.MoorePrediction)
}
